"""Per-stage timing records for sweep runs.

``StageTimings`` answers "where did the study spend its time": wall
seconds per stage, per-task (per-threshold) seconds inside each stage,
how many tasks were dispatched on which backend, and how the threshold
dataset cache performed.  It is threaded into ``StudyReport`` and
rendered by the CLI behind ``--timings``.

Wall times are measurements, not results: two runs of the same study
produce identical model numbers but different timings, so parity
checks must compare report *values* and ignore this record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, StageNotFoundError

__all__ = ["TaskTiming", "StageTiming", "StageTimings"]


@dataclass(frozen=True)
class TaskTiming:
    """Wall seconds of one task, keyed for per-threshold breakdowns."""

    key: str
    seconds: float
    threshold: int | None = None


@dataclass
class StageTiming:
    """One sweep stage: its wall clock and the tasks it dispatched.

    ``wall_seconds`` is the stage's elapsed time as seen by the
    caller; ``sum(t.seconds for t in tasks)`` is aggregate worker
    compute.  Under the process backend the second can exceed the
    first — that surplus is the parallel speedup.
    """

    stage: str
    wall_seconds: float = 0.0
    tasks: list[TaskTiming] = field(default_factory=list)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def task_seconds(self) -> float:
        return sum(t.seconds for t in self.tasks)

    def threshold_seconds(self) -> dict[int, float]:
        """threshold → summed task seconds (tasks without one skipped)."""
        out: dict[int, float] = {}
        for t in self.tasks:
            if t.threshold is not None:
                out[t.threshold] = out.get(t.threshold, 0.0) + t.seconds
        return out

    def percentile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile of per-task seconds.

        ``q`` is in [0, 100]; NaN when no tasks were recorded.  The
        serving layer uses this to report request-latency p50/p95/p99
        with the same record type the sweep engine times stages with.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {q}"
            )
        if not self.tasks:
            return float("nan")
        ordered = sorted(t.seconds for t in self.tasks)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(rank, len(ordered) - 1))]

    def latency_summary(self) -> dict[str, float]:
        """count / mean / p50 / p95 / p99 / max over per-task seconds."""
        if not self.tasks:
            nan = float("nan")
            return {
                "count": 0, "mean": nan, "p50": nan,
                "p95": nan, "p99": nan, "max": nan,
            }
        seconds = [t.seconds for t in self.tasks]
        return {
            "count": len(seconds),
            "mean": sum(seconds) / len(seconds),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(seconds),
        }


@dataclass
class StageTimings:
    """The full timing record of one study run."""

    backend: str = "serial"
    n_jobs: int = 1
    stages: list[StageTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages)

    @property
    def n_tasks(self) -> int:
        return sum(s.n_tasks for s in self.stages)

    def stage(self, name: str) -> StageTiming:
        """The timing record of one stage (raises ``KeyError`` if absent)."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise StageNotFoundError(name)

    def render(self) -> str:
        """Fixed-width timing table (the CLI ``--timings`` output)."""
        from repro.core.reporting import render_table

        rows = []
        for s in self.stages:
            per_threshold = ", ".join(
                f"cp-{k}={v:.2f}s"
                for k, v in sorted(s.threshold_seconds().items())
            )
            rows.append(
                [s.stage, f"{s.wall_seconds:.2f}", s.n_tasks, per_threshold]
            )
        rows.append(
            ["total", f"{self.total_seconds:.2f}", self.n_tasks, ""]
        )
        table = render_table(
            ["stage", "wall s", "tasks", "per-threshold task seconds"],
            rows,
            title=(
                f"Stage timings (backend={self.backend}, "
                f"n_jobs={self.n_jobs})"
            ),
        )
        cache_line = (
            f"threshold dataset cache: {self.cache_hits} hits, "
            f"{self.cache_misses} misses"
        )
        return f"{table}\n{cache_line}"
