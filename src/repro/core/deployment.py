"""Deployment: a persistable crash-proneness scorer.

The paper's future work: "develop deployment to embed with a strategic
and operational decision support system."  :class:`CrashPronenessScorer`
packages everything such a system needs:

* the fitted CP-k decision tree (and optionally the regression tree),
* the selected threshold and its provenance (MCPV, plateau, seed),
* validation statistics recorded at training time,

with JSON save/load, segment scoring, and a ranked treatment list —
the artefact a road authority's asset-management pipeline would consume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.assessment import assess_scores
from repro.core.thresholds import TARGET_COLUMN, build_threshold_dataset
from repro.datatable import DataTable
from repro.evaluation import train_valid_split
from repro.exceptions import ReproError
from repro.mining import DecisionTreeClassifier, RegressionTree, TreeConfig

__all__ = ["CrashPronenessScorer", "SegmentScore", "payload_checksum"]

SCORER_FORMAT_VERSION = 1


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON of a scorer payload.

    The ``checksum`` key itself is excluded, so a saved file can embed
    the digest of everything else and the registry can re-derive it to
    detect corrupted or hand-edited artefacts.
    """
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SegmentScore:
    """One scored segment, ready for a treatment list."""

    segment_id: int
    probability: float
    crash_prone: bool
    rank: int


@dataclass
class CrashPronenessScorer:
    """A trained, persistable crash-proneness model.

    Build with :meth:`train` (from crash instances and a threshold) or
    :meth:`load` (from a saved file).

    Attributes
    ----------
    threshold:
        The crash-count threshold the model classifies against.
    model:
        The fitted chi-square decision tree.
    validation:
        Table 2 measures recorded on the held-out validation split at
        training time (what the system's operators audit against).
    metadata:
        Free-form provenance (seed, dataset description, ...).
    """

    threshold: int
    model: DecisionTreeClassifier
    validation: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)
    regression: RegressionTree | None = None

    # -- training ------------------------------------------------------
    @classmethod
    def train(
        cls,
        crash_instances: DataTable,
        threshold: int,
        seed: int = 0,
        train_fraction: float = 0.6,
        tree_config: TreeConfig | None = None,
        metadata: dict[str, object] | None = None,
        with_regression: bool = False,
    ) -> "CrashPronenessScorer":
        """Train a scorer at a given crash-proneness threshold.

        With ``with_regression`` the paper's companion F-test regression
        tree is fitted on the same split and persisted alongside the
        classifier (its R² is what Tables 3/4 report).
        """
        dataset = build_threshold_dataset(crash_instances, threshold)
        rng = np.random.default_rng(seed)
        split = train_valid_split(
            dataset.table, rng, train_fraction, stratify_by=TARGET_COLUMN
        )
        if tree_config is None:
            min_leaf = max(25, dataset.table.n_rows // 150)
            tree_config = TreeConfig(
                min_leaf=min_leaf,
                min_split=max(60, int(2.5 * min_leaf)),
                max_leaves=160,
            )
        model = DecisionTreeClassifier(tree_config).fit(
            split.train, TARGET_COLUMN
        )
        regression = None
        if with_regression:
            regression = RegressionTree(tree_config).fit(
                split.train, TARGET_COLUMN
            )
        actual = build_threshold_dataset(
            split.valid, threshold
        ).target_vector()
        assessment = assess_scores(actual, model.predict_proba(split.valid))
        return cls(
            threshold=threshold,
            model=model,
            validation=assessment.as_dict(),
            metadata=dict(metadata or {}, seed=seed),
            regression=regression,
        )

    # -- scoring -------------------------------------------------------------
    def score(self, table: DataTable) -> np.ndarray:
        """P(crash prone) per row of any table with the road attributes."""
        return self.model.predict_proba(table)

    def classify(self, table: DataTable, cutoff: float = 0.5) -> np.ndarray:
        """0/1 crash-proneness flags."""
        return self.model.predict(table, threshold=cutoff)

    def treatment_list(
        self,
        segment_table: DataTable,
        top: int | None = None,
        cutoff: float = 0.5,
        probabilities: np.ndarray | None = None,
    ) -> list[SegmentScore]:
        """Segments ranked by predicted crash-proneness.

        ``segment_table`` must carry ``segment_id`` plus the model's
        input attributes.  Returns the ``top`` highest-probability
        segments (all, if ``top`` is None), ranked descending.

        ``probabilities`` short-circuits the scoring pass with
        already-computed per-row scores (the CLI's sharded bulk path
        uses this to rank without re-scoring); they must align with
        ``segment_table`` row for row.
        """
        if "segment_id" not in segment_table:
            raise ReproError(
                "treatment_list requires a 'segment_id' column"
            )
        if probabilities is None:
            probabilities = self.score(segment_table)
        else:
            probabilities = np.asarray(probabilities, dtype=np.float64)
            if probabilities.shape != (segment_table.n_rows,):
                raise ReproError(
                    f"precomputed probabilities have shape "
                    f"{probabilities.shape}, expected "
                    f"({segment_table.n_rows},)"
                )
        ids = segment_table.numeric("segment_id").astype(int)
        order = np.argsort(-probabilities, kind="stable")
        if top is not None:
            order = order[:top]
        return [
            SegmentScore(
                segment_id=int(ids[i]),
                probability=float(probabilities[i]),
                crash_prone=bool(probabilities[i] >= cutoff),
                rank=rank + 1,
            )
            for rank, i in enumerate(order)
        ]

    def expected_prone_km(self, segment_table: DataTable) -> float:
        """Expected crash-prone kilometres (sum of probabilities;
        segments are 1 km)."""
        return float(self.score(segment_table).sum())

    def score_regression(self, table: DataTable) -> np.ndarray:
        """Companion regression-tree predictions (if trained with one)."""
        if self.regression is None:
            raise ReproError(
                "this scorer was trained without a regression tree; "
                "pass with_regression=True to train()"
            )
        return self.regression.predict(table)

    # -- serving contract ---------------------------------------------------
    def input_schema(self) -> dict[str, dict]:
        """The columns a scoring request must provide.

        Maps input column name → ``{"kind": "numeric"}`` or
        ``{"kind": "categorical", "levels": [...]}`` in model input
        order.  This is the schema the serving layer validates request
        rows against; labels outside ``levels`` are legal and route the
        same way unseen labels did at fit time.
        """
        vocabularies = self.model.vocabularies
        schema: dict[str, dict] = {}
        for name in self.model.input_names:
            levels = vocabularies.get(name)
            if levels is None:
                schema[name] = {"kind": "numeric"}
            else:
                schema[name] = {"kind": "categorical", "levels": list(levels)}
        return schema

    # -- persistence -------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "format_version": SCORER_FORMAT_VERSION,
            "threshold": self.threshold,
            "validation": self.validation,
            "metadata": self.metadata,
            "input_schema": self.input_schema(),
            "model": self.model.to_dict(),
            "regression": (
                None if self.regression is None else self.regression.to_dict()
            ),
        }
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def from_dict(
        cls, data: dict, source: str | Path | None = None
    ) -> "CrashPronenessScorer":
        origin = f" in {source}" if source is not None else ""
        version = data.get("format_version")
        if version != SCORER_FORMAT_VERSION:
            raise ReproError(
                f"unsupported scorer format version {version!r}{origin} "
                f"(expected {SCORER_FORMAT_VERSION})"
            )
        stored = data.get("checksum")
        if stored is not None and stored != payload_checksum(data):
            raise ReproError(
                f"scorer checksum mismatch{origin}: the artefact was "
                "modified after save()"
            )
        regression_data = data.get("regression")
        return cls(
            threshold=data["threshold"],
            model=DecisionTreeClassifier.from_dict(data["model"]),
            validation=dict(data["validation"]),
            metadata=dict(data["metadata"]),
            regression=(
                None
                if regression_data is None
                else RegressionTree.from_dict(regression_data)
            ),
        )

    def save(self, path: str | Path) -> None:
        """Write the scorer to a JSON file (checksummed, see
        :func:`payload_checksum`)."""
        payload = json.dumps(self.to_dict(), indent=2, allow_nan=True)
        Path(path).write_text(payload, encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "CrashPronenessScorer":
        """Read a scorer saved with :meth:`save`.

        Raises :class:`ReproError` naming ``path`` for missing files,
        invalid JSON, checksum mismatches and stale format versions.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read scorer file {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"scorer file {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ReproError(
                f"scorer file {path} does not contain a JSON object"
            )
        return cls.from_dict(data, source=path)

    def describe(self) -> str:
        mcpv = self.validation.get("mcpv", float("nan"))
        kappa = self.validation.get("kappa", float("nan"))
        return (
            f"CrashPronenessScorer(CP-{self.threshold}, "
            f"{self.model.n_leaves} leaves, validation MCPV={mcpv:.3f}, "
            f"Kappa={kappa:.3f})"
        )
