"""Deployment: a persistable crash-proneness scorer.

The paper's future work: "develop deployment to embed with a strategic
and operational decision support system."  :class:`CrashPronenessScorer`
packages everything such a system needs:

* the fitted CP-k decision tree (and optionally the regression tree),
* the selected threshold and its provenance (MCPV, plateau, seed),
* validation statistics recorded at training time,

with JSON save/load, segment scoring, and a ranked treatment list —
the artefact a road authority's asset-management pipeline would consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.assessment import assess_scores
from repro.core.thresholds import TARGET_COLUMN, build_threshold_dataset
from repro.datatable import DataTable
from repro.evaluation import train_valid_split
from repro.exceptions import ReproError
from repro.mining import DecisionTreeClassifier, TreeConfig

__all__ = ["CrashPronenessScorer", "SegmentScore"]

SCORER_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SegmentScore:
    """One scored segment, ready for a treatment list."""

    segment_id: int
    probability: float
    crash_prone: bool
    rank: int


@dataclass
class CrashPronenessScorer:
    """A trained, persistable crash-proneness model.

    Build with :meth:`train` (from crash instances and a threshold) or
    :meth:`load` (from a saved file).

    Attributes
    ----------
    threshold:
        The crash-count threshold the model classifies against.
    model:
        The fitted chi-square decision tree.
    validation:
        Table 2 measures recorded on the held-out validation split at
        training time (what the system's operators audit against).
    metadata:
        Free-form provenance (seed, dataset description, ...).
    """

    threshold: int
    model: DecisionTreeClassifier
    validation: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    # -- training ------------------------------------------------------
    @classmethod
    def train(
        cls,
        crash_instances: DataTable,
        threshold: int,
        seed: int = 0,
        train_fraction: float = 0.6,
        tree_config: TreeConfig | None = None,
        metadata: dict[str, object] | None = None,
    ) -> "CrashPronenessScorer":
        """Train a scorer at a given crash-proneness threshold."""
        dataset = build_threshold_dataset(crash_instances, threshold)
        rng = np.random.default_rng(seed)
        split = train_valid_split(
            dataset.table, rng, train_fraction, stratify_by=TARGET_COLUMN
        )
        if tree_config is None:
            min_leaf = max(25, dataset.table.n_rows // 150)
            tree_config = TreeConfig(
                min_leaf=min_leaf,
                min_split=max(60, int(2.5 * min_leaf)),
                max_leaves=160,
            )
        model = DecisionTreeClassifier(tree_config).fit(
            split.train, TARGET_COLUMN
        )
        actual = build_threshold_dataset(
            split.valid, threshold
        ).target_vector()
        assessment = assess_scores(actual, model.predict_proba(split.valid))
        return cls(
            threshold=threshold,
            model=model,
            validation=assessment.as_dict(),
            metadata=dict(metadata or {}, seed=seed),
        )

    # -- scoring -------------------------------------------------------------
    def score(self, table: DataTable) -> np.ndarray:
        """P(crash prone) per row of any table with the road attributes."""
        return self.model.predict_proba(table)

    def classify(self, table: DataTable, cutoff: float = 0.5) -> np.ndarray:
        """0/1 crash-proneness flags."""
        return self.model.predict(table, threshold=cutoff)

    def treatment_list(
        self,
        segment_table: DataTable,
        top: int | None = None,
        cutoff: float = 0.5,
    ) -> list[SegmentScore]:
        """Segments ranked by predicted crash-proneness.

        ``segment_table`` must carry ``segment_id`` plus the model's
        input attributes.  Returns the ``top`` highest-probability
        segments (all, if ``top`` is None), ranked descending.
        """
        if "segment_id" not in segment_table:
            raise ReproError(
                "treatment_list requires a 'segment_id' column"
            )
        probabilities = self.score(segment_table)
        ids = segment_table.numeric("segment_id").astype(int)
        order = np.argsort(-probabilities, kind="stable")
        if top is not None:
            order = order[:top]
        return [
            SegmentScore(
                segment_id=int(ids[i]),
                probability=float(probabilities[i]),
                crash_prone=bool(probabilities[i] >= cutoff),
                rank=rank + 1,
            )
            for rank, i in enumerate(order)
        ]

    def expected_prone_km(self, segment_table: DataTable) -> float:
        """Expected crash-prone kilometres (sum of probabilities;
        segments are 1 km)."""
        return float(self.score(segment_table).sum())

    # -- persistence -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": SCORER_FORMAT_VERSION,
            "threshold": self.threshold,
            "validation": self.validation,
            "metadata": self.metadata,
            "model": self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrashPronenessScorer":
        version = data.get("format_version")
        if version != SCORER_FORMAT_VERSION:
            raise ReproError(
                f"unsupported scorer format version {version!r} "
                f"(expected {SCORER_FORMAT_VERSION})"
            )
        return cls(
            threshold=data["threshold"],
            model=DecisionTreeClassifier.from_dict(data["model"]),
            validation=dict(data["validation"]),
            metadata=dict(data["metadata"]),
        )

    def save(self, path: str | Path) -> None:
        """Write the scorer to a JSON file."""
        payload = json.dumps(self.to_dict(), indent=2, allow_nan=True)
        Path(path).write_text(payload, encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "CrashPronenessScorer":
        """Read a scorer saved with :meth:`save`."""
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        mcpv = self.validation.get("mcpv", float("nan"))
        kappa = self.validation.get("kappa", float("nan"))
        return (
            f"CrashPronenessScorer(CP-{self.threshold}, "
            f"{self.model.n_leaves} leaves, validation MCPV={mcpv:.3f}, "
            f"Kappa={kappa:.3f})"
        )
