"""Attribute analysis: cluster signatures, correlations, importances.

The paper's future work: "the full range of attribute values
partitioned by cluster will be analyzed to develop attribute
correlations with the cluster groups, and distinguish correlations,
leading to new knowledge about causation of the particular road segment
types."  This module implements that analysis:

* :func:`cluster_attribute_signatures` — per cluster, which attributes
  deviate most from the population (Cohen's d for interval attributes,
  share lift for nominal levels);
* :func:`attribute_crash_correlations` — each attribute's association
  with the segment crash count (Pearson/Spearman for interval,
  correlation ratio η² for nominal);
* :func:`tree_feature_importance` — which attributes a fitted tree
  actually splits on, weighted by split statistic and node size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import EvaluationError
from repro.mining.tree.structure import TreeNode, iter_nodes

__all__ = [
    "AttributeSignature",
    "cluster_attribute_signatures",
    "AttributeCorrelation",
    "attribute_crash_correlations",
    "tree_feature_importance",
]


@dataclass(frozen=True)
class AttributeSignature:
    """How one attribute distinguishes one cluster from the population.

    ``effect`` is Cohen's d for interval attributes (cluster mean vs
    rest, pooled SD) and the dominant level's share lift (cluster share
    − population share) for nominal attributes.
    """

    cluster_id: int
    attribute: str
    effect: float
    cluster_value: float | str
    population_value: float | str

    def describe(self) -> str:
        direction = "above" if self.effect > 0 else "below"
        return (
            f"cluster {self.cluster_id}: {self.attribute} "
            f"{direction} population "
            f"({self.cluster_value} vs {self.population_value}, "
            f"effect {self.effect:+.2f})"
        )


def _cohens_d(group: np.ndarray, rest: np.ndarray) -> float:
    group = group[~np.isnan(group)]
    rest = rest[~np.isnan(rest)]
    if group.size < 2 or rest.size < 2:
        return 0.0
    pooled_var = (
        (group.size - 1) * group.var(ddof=1)
        + (rest.size - 1) * rest.var(ddof=1)
    ) / max(group.size + rest.size - 2, 1)
    if pooled_var <= 0:
        return 0.0
    return float((group.mean() - rest.mean()) / np.sqrt(pooled_var))


def cluster_attribute_signatures(
    table: DataTable,
    assignment: np.ndarray,
    include: list[str] | None = None,
    top_per_cluster: int = 5,
) -> dict[int, list[AttributeSignature]]:
    """Most distinguishing attributes of every cluster.

    Returns cluster id → signatures sorted by |effect| descending,
    at most ``top_per_cluster`` each.
    """
    assignment = np.asarray(assignment)
    if assignment.shape[0] != table.n_rows:
        raise EvaluationError(
            f"assignment length {assignment.shape[0]} does not match "
            f"table of {table.n_rows} rows"
        )
    names = include or [
        c.name
        for c in table.columns()
        if c.name not in ("segment_id", "segment_crash_count", "crash_year")
    ]
    result: dict[int, list[AttributeSignature]] = {}
    for cluster_id in np.unique(assignment):
        members = assignment == cluster_id
        signatures: list[AttributeSignature] = []
        for name in names:
            column = table.column(name)
            if isinstance(column, NumericColumn):
                values = column.values
                effect = _cohens_d(values[members], values[~members])
                present = values[~np.isnan(values)]
                cluster_present = values[members]
                cluster_present = cluster_present[
                    ~np.isnan(cluster_present)
                ]
                if cluster_present.size == 0 or present.size == 0:
                    continue
                signatures.append(
                    AttributeSignature(
                        cluster_id=int(cluster_id),
                        attribute=name,
                        effect=effect,
                        cluster_value=round(float(cluster_present.mean()), 3),
                        population_value=round(float(present.mean()), 3),
                    )
                )
            elif isinstance(column, CategoricalColumn):
                codes = column.codes
                for code, label in enumerate(column.labels):
                    cluster_share = float(
                        (codes[members] == code).mean()
                    )
                    population_share = float((codes == code).mean())
                    lift = cluster_share - population_share
                    if abs(lift) < 1e-12:
                        continue
                    signatures.append(
                        AttributeSignature(
                            cluster_id=int(cluster_id),
                            attribute=f"{name}={label}",
                            effect=lift,
                            cluster_value=round(cluster_share, 3),
                            population_value=round(population_share, 3),
                        )
                    )
        signatures.sort(key=lambda s: -abs(s.effect))
        result[int(cluster_id)] = signatures[:top_per_cluster]
    return result


@dataclass(frozen=True)
class AttributeCorrelation:
    """Association of one attribute with the segment crash count."""

    attribute: str
    kind: str  # 'pearson+spearman' | 'eta_squared'
    pearson: float
    spearman: float
    eta_squared: float

    @property
    def strength(self) -> float:
        """A comparable magnitude across kinds."""
        if self.kind == "eta_squared":
            return float(np.sqrt(max(self.eta_squared, 0.0)))
        return abs(self.spearman)


def attribute_crash_correlations(
    table: DataTable,
    count_column: str = "segment_crash_count",
    include: list[str] | None = None,
) -> list[AttributeCorrelation]:
    """Correlate every attribute with the crash count, strongest first."""
    counts = table.numeric(count_column)
    names = include or [
        c.name
        for c in table.columns()
        if c.name
        not in ("segment_id", count_column, "crash_year")
    ]
    out: list[AttributeCorrelation] = []
    for name in names:
        column = table.column(name)
        if isinstance(column, NumericColumn):
            values = column.values
            mask = ~np.isnan(values) & ~np.isnan(counts)
            if mask.sum() < 3 or values[mask].std() == 0:  # repro: ignore[REP003] -- exact zero std means a constant column; Pearson is undefined only then
                continue
            pearson = float(np.corrcoef(values[mask], counts[mask])[0, 1])
            spearman = float(
                stats.spearmanr(values[mask], counts[mask]).statistic
            )
            out.append(
                AttributeCorrelation(
                    attribute=name,
                    kind="pearson+spearman",
                    pearson=pearson,
                    spearman=spearman,
                    eta_squared=float("nan"),
                )
            )
        elif isinstance(column, CategoricalColumn):
            codes = column.codes
            groups = [
                counts[codes == code]
                for code in range(len(column.labels))
                if (codes == code).sum() > 1
            ]
            if len(groups) < 2:
                continue
            from repro.evaluation import one_way_anova

            try:
                anova = one_way_anova(groups)
            except EvaluationError:
                continue
            out.append(
                AttributeCorrelation(
                    attribute=name,
                    kind="eta_squared",
                    pearson=float("nan"),
                    spearman=float("nan"),
                    eta_squared=anova.eta_squared,
                )
            )
    out.sort(key=lambda c: -c.strength)
    return out


def tree_feature_importance(root: TreeNode) -> dict[str, float]:
    """Split-statistic importance of every feature in a fitted tree.

    Each internal node contributes its test statistic weighted by the
    fraction of training rows it covers; importances are normalised to
    sum to 1.
    """
    raw: dict[str, float] = {}
    total_rows = max(root.n_samples, 1)
    for node in iter_nodes(root):
        if node.split is None:
            continue
        weight = node.n_samples / total_rows
        raw[node.split.feature] = raw.get(node.split.feature, 0.0) + (
            node.split.statistic * weight
        )
    total = sum(raw.values())
    if total <= 0:
        return {}
    return dict(
        sorted(
            ((k, v / total) for k, v in raw.items()),
            key=lambda item: -item[1],
        )
    )
