"""Model assessment records and the threshold-selection rule.

The paper assesses every CP-k model with the Table 2 measures, leaning
on MCPV and Kappa under imbalance, and then applies its selection rule:

    "The strategy was to select the threshold from the model assessed
    with the highest classification rate near the crash/no crash
    boundary as the best threshold for making the crash-proneness
    division."

:func:`select_best_threshold` implements that rule: find the metric's
peak, widen it to a plateau (values within a tolerance of the peak),
and return the *lowest* threshold on the plateau — "near the crash/no
crash boundary".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluation import (
    BinaryConfusion,
    accuracy,
    kappa,
    mcpv,
    misclassification_rate,
    negative_predictive_value,
    positive_predictive_value,
    roc_auc,
    sensitivity,
    specificity,
    weighted_precision,
    weighted_recall,
)
from repro.exceptions import EvaluationError

__all__ = [
    "ClassifierAssessment",
    "assess_scores",
    "ThresholdSelection",
    "select_best_threshold",
]


@dataclass(frozen=True)
class ClassifierAssessment:
    """All Table 2 classification measures for one model on one dataset."""

    accuracy: float
    misclassification_rate: float
    sensitivity: float
    specificity: float
    ppv: float
    npv: float
    mcpv: float
    kappa: float
    roc_area: float
    weighted_precision: float
    weighted_recall: float
    confusion: BinaryConfusion

    def as_dict(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "misclassification_rate": self.misclassification_rate,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "ppv": self.ppv,
            "npv": self.npv,
            "mcpv": self.mcpv,
            "kappa": self.kappa,
            "roc_area": self.roc_area,
            "weighted_precision": self.weighted_precision,
            "weighted_recall": self.weighted_recall,
        }


def assess_scores(
    actual: np.ndarray,
    scores: np.ndarray,
    threshold: float = 0.5,
) -> ClassifierAssessment:
    """Assess probability scores against 0/1 actuals at a cut-off."""
    cm = BinaryConfusion.from_scores(actual, scores, threshold)
    return ClassifierAssessment(
        accuracy=accuracy(cm),
        misclassification_rate=misclassification_rate(cm),
        sensitivity=sensitivity(cm),
        specificity=specificity(cm),
        ppv=positive_predictive_value(cm),
        npv=negative_predictive_value(cm),
        mcpv=mcpv(cm),
        kappa=kappa(cm),
        roc_area=roc_auc(actual, scores),
        weighted_precision=weighted_precision(cm),
        weighted_recall=weighted_recall(cm),
        confusion=cm,
    )


@dataclass(frozen=True)
class ThresholdSelection:
    """Outcome of the paper's threshold-selection rule."""

    selected_threshold: int
    metric: str
    peak_value: float
    plateau: tuple[int, ...]
    values: dict[int, float] = field(default_factory=dict)

    def describe(self) -> str:
        plateau = ", ".join(str(t) for t in self.plateau)
        return (
            f"{self.metric} peaks at {self.peak_value:.3f}; plateau "
            f"thresholds {{{plateau}}}; selected {self.selected_threshold} "
            "(lowest on the plateau, nearest the crash/no-crash boundary)"
        )


def select_best_threshold(
    values: dict[int, float],
    metric: str = "mcpv",
    plateau_tolerance: float = 0.02,
    exclude_degenerate: bool = True,
) -> ThresholdSelection:
    """Apply the paper's selection rule to per-threshold metric values.

    Parameters
    ----------
    values:
        threshold → metric value (NaNs are ignored).
    metric:
        Name recorded in the result (documentation only).
    plateau_tolerance:
        Values within this distance of the peak join the plateau.
    exclude_degenerate:
        Drop the top threshold when its value is exactly 1.0 — the
        paper notes the CP-64 model's perfect classification "is due to
        the low instance count and crashes referencing the same road
        segment and is unreliable".
    """
    usable = {
        k: v for k, v in values.items() if not np.isnan(v)
    }
    if exclude_degenerate and len(usable) > 1:
        top = max(usable)
        if usable[top] >= 1.0:
            del usable[top]
    if not usable:
        raise EvaluationError(
            "no usable metric values to select a threshold from"
        )
    peak_value = max(usable.values())
    plateau = tuple(
        sorted(
            k
            for k, v in usable.items()
            if v >= peak_value - plateau_tolerance
        )
    )
    return ThresholdSelection(
        selected_threshold=plateau[0],
        metric=metric,
        peak_value=peak_value,
        plateau=plateau,
        values=dict(sorted(values.items())),
    )
