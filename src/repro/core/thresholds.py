"""Crash-proneness threshold datasets (CP-k construction, Table 1).

"The series of crash-proneness datasets was developed with the target
variable for each set derived from a progressively higher crash count
threshold.  Crash prone 2, for example, compares 1km road segment
attributes from roads, with 0, 1 or 2 crashes (4 year) as the non-crash
prone road segments, roads with 3 crashes and above as the crash prone
road segments."

A :class:`ThresholdDataset` is the modelling table with a binary
``crash_prone`` target where *positive ⇔ segment crash count > k*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import CategoricalColumn, DataTable
from repro.exceptions import EmptyTableError, SchemaError
from repro.roads.attributes import modelling_schema

__all__ = [
    "CRASH_COUNT_COLUMN",
    "TARGET_COLUMN",
    "NEGATIVE_LABEL",
    "POSITIVE_LABEL",
    "PHASE1_THRESHOLDS",
    "PHASE2_THRESHOLDS",
    "ThresholdDataset",
    "build_threshold_dataset",
    "build_threshold_series",
    "table1_rows",
]

CRASH_COUNT_COLUMN = "segment_crash_count"
TARGET_COLUMN = "crash_prone"
NEGATIVE_LABEL = "non_crash_prone"
POSITIVE_LABEL = "crash_prone"

#: Phase 1 sweeps the crash/no-crash dataset from the crash/no-crash
#: boundary upward; phase 2 (crash-only data) starts at 2.
PHASE1_THRESHOLDS = (0, 2, 4, 8, 16, 32, 64)
PHASE2_THRESHOLDS = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ThresholdDataset:
    """One CP-k dataset: table + derived binary target.

    Attributes
    ----------
    threshold:
        k; segments with count > k are the crash-prone class.
    table:
        Source rows plus the ``crash_prone`` categorical target and a
        modelling schema marking it as TARGET.
    n_non_prone / n_prone:
        Class instance counts (the columns of Table 1).
    """

    threshold: int
    table: DataTable
    n_non_prone: int
    n_prone: int

    @property
    def name(self) -> str:
        return f"CP-{self.threshold}"

    @property
    def total(self) -> int:
        return self.n_non_prone + self.n_prone

    @property
    def imbalance_ratio(self) -> float:
        small = min(self.n_non_prone, self.n_prone)
        large = max(self.n_non_prone, self.n_prone)
        return float("inf") if small == 0 else large / small

    def target_vector(self) -> np.ndarray:
        """0/1 target aligned with the table rows."""
        col = self.table.categorical(TARGET_COLUMN)
        return (col.codes == col.labels.index(POSITIVE_LABEL)).astype(
            np.int64
        )


def build_threshold_dataset(
    table: DataTable, threshold: int
) -> ThresholdDataset:
    """Derive the CP-``threshold`` dataset from an instance table.

    The table must carry ``segment_crash_count``; every row with count
    strictly greater than the threshold becomes ``crash_prone``.
    """
    if threshold < 0:
        raise SchemaError(f"threshold must be >= 0, got {threshold}")
    if table.n_rows == 0:
        raise EmptyTableError("cannot build a threshold dataset of 0 rows")
    counts = table.numeric(CRASH_COUNT_COLUMN)
    if np.isnan(counts).any():
        raise SchemaError(
            f"{CRASH_COUNT_COLUMN!r} contains missing values; counts must "
            "be complete to derive targets"
        )
    positive = counts > threshold
    # Vectorised target construction: the label order (NEGATIVE_LABEL,
    # POSITIVE_LABEL) makes the boolean flag itself the code.
    target = CategoricalColumn.from_codes(
        TARGET_COLUMN,
        positive.astype(np.int64),
        (NEGATIVE_LABEL, POSITIVE_LABEL),
    )
    with_target = table.with_column(target)
    schema = modelling_schema(TARGET_COLUMN)
    # Crash-level attribute columns may be absent (phase-1 combined
    # table); restrict the schema to columns that exist.
    schema = schema.subset(
        [s.name for s in schema if s.name in with_target]
    )
    return ThresholdDataset(
        threshold=threshold,
        table=with_target.with_schema(schema),
        n_non_prone=int((~positive).sum()),
        n_prone=int(positive.sum()),
    )


def build_threshold_series(
    table: DataTable, thresholds: tuple[int, ...]
) -> list[ThresholdDataset]:
    """CP-k datasets for every threshold, ascending."""
    return [
        build_threshold_dataset(table, k) for k in sorted(thresholds)
    ]


def table1_rows(
    table: DataTable, thresholds: tuple[int, ...] = PHASE2_THRESHOLDS
) -> list[dict]:
    """Rows of the paper's Table 1 for the given instance table."""
    rows = []
    for dataset in build_threshold_series(table, thresholds):
        rows.append(
            {
                "target_label": dataset.name,
                "threshold": dataset.threshold,
                "non_crash_prone_instances": dataset.n_non_prone,
                "crash_prone_instances": dataset.n_prone,
                "total_instance_count": dataset.total,
            }
        )
    return rows
