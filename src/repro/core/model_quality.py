"""Training-vs-validation model quality profiles.

The paper justifies its evaluation protocol thus: "the
training/validation method was used because correlations between the
training and validation plots provided by this method are good
indicators of the raw model quality, an aspect that is obscured by the
use of high performance methods such as cross-validation, boosting,
bagging and so on."

:func:`train_validation_profile` produces exactly those paired plots:
the chosen metric on the training and validation partitions across a
sweep of tree sizes, plus their correlation.  A high correlation with a
small gap says the model family is honest at that size; a widening gap
marks the onset of overfitting (for the paper's data, the point where
the tree starts memorising duplicated segment rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assessment import assess_scores
from repro.core.thresholds import TARGET_COLUMN, build_threshold_dataset
from repro.datatable import DataTable
from repro.evaluation import train_valid_split
from repro.exceptions import EvaluationError
from repro.mining import DecisionTreeClassifier, TreeConfig

__all__ = ["QualityPoint", "QualityProfile", "train_validation_profile"]


@dataclass(frozen=True)
class QualityPoint:
    """One tree size in the profile."""

    leaf_budget: int
    leaves_grown: int
    train_value: float
    valid_value: float

    @property
    def gap(self) -> float:
        return self.train_value - self.valid_value


@dataclass
class QualityProfile:
    """The paired training/validation assessment plot."""

    metric: str
    points: list[QualityPoint]

    def correlation(self) -> float:
        """Pearson correlation of the train and validation plots."""
        train = [p.train_value for p in self.points]
        valid = [p.valid_value for p in self.points]
        if len(self.points) < 2:
            return float("nan")
        if np.std(train) == 0 or np.std(valid) == 0:  # repro: ignore[REP003] -- exact zero std means a constant fold; correlation is defined for any nonzero spread
            return float("nan")
        return float(np.corrcoef(train, valid)[0, 1])

    def max_gap(self) -> float:
        return max(p.gap for p in self.points)

    def honest_sizes(self, gap_tolerance: float = 0.05) -> list[int]:
        """Leaf budgets whose train/valid gap stays within tolerance."""
        return [
            p.leaf_budget
            for p in self.points
            if p.gap <= gap_tolerance
        ]

    def best_validated(self) -> QualityPoint:
        return max(self.points, key=lambda p: p.valid_value)


def train_validation_profile(
    crash_instances: DataTable,
    threshold: int,
    leaf_budgets: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    metric: str = "mcpv",
    seed: int = 0,
    train_fraction: float = 0.6,
    min_leaf: int | None = None,
) -> QualityProfile:
    """Sweep tree sizes and assess on both partitions.

    ``metric`` is any :class:`ClassifierAssessment` field (mcpv, kappa,
    roc_area, accuracy, ...).
    """
    if not leaf_budgets:
        raise EvaluationError("leaf_budgets must not be empty")
    dataset = build_threshold_dataset(crash_instances, threshold)
    rng = np.random.default_rng(seed)
    split = train_valid_split(
        dataset.table, rng, train_fraction, stratify_by=TARGET_COLUMN
    )
    train_actual = build_threshold_dataset(
        split.train, threshold
    ).target_vector()
    valid_actual = build_threshold_dataset(
        split.valid, threshold
    ).target_vector()
    if min_leaf is None:
        min_leaf = max(25, dataset.table.n_rows // 300)
    points: list[QualityPoint] = []
    for budget in sorted(set(leaf_budgets)):
        config = TreeConfig(
            min_leaf=min_leaf,
            min_split=max(60, int(2.5 * min_leaf)),
            max_leaves=max(2, budget),
        )
        model = DecisionTreeClassifier(config).fit(
            split.train, TARGET_COLUMN
        )
        train_assessment = assess_scores(
            train_actual, model.predict_proba(split.train)
        )
        valid_assessment = assess_scores(
            valid_actual, model.predict_proba(split.valid)
        )
        points.append(
            QualityPoint(
                leaf_budget=budget,
                leaves_grown=model.n_leaves,
                train_value=float(getattr(train_assessment, metric)),
                valid_value=float(getattr(valid_assessment, metric)),
            )
        )
    return QualityProfile(metric=metric, points=points)
