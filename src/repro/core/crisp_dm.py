"""A minimal CRISP-DM pipeline framework.

"To conform to industry-standard processes, the CRISP-DM framework was
used to guide the study through development of its data exploration,
data preparation, model deployment and model assessment and
evaluation."  This module gives the study an explicit, inspectable
backbone: named stages, ordered execution over a shared context, and a
run log recording what each stage produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.exceptions import ReproError

__all__ = ["CrispDmStage", "StageRun", "CrispDmPipeline"]


class CrispDmStage(Enum):
    """The six CRISP-DM 1.0 stages."""

    BUSINESS_UNDERSTANDING = "business understanding"
    DATA_UNDERSTANDING = "data understanding"
    DATA_PREPARATION = "data preparation"
    MODELING = "modeling"
    EVALUATION = "evaluation"
    DEPLOYMENT = "deployment"


_STAGE_ORDER = list(CrispDmStage)


@dataclass
class StageRun:
    """Record of one executed stage task."""

    stage: CrispDmStage
    name: str
    seconds: float
    outputs: tuple[str, ...]


@dataclass
class CrispDmPipeline:
    """Ordered stage tasks operating on a shared context dict.

    Tasks are registered against a stage and receive the context; any
    mapping they return is merged into it.  Execution follows CRISP-DM
    stage order, then registration order within a stage.
    """

    tasks: list[tuple[CrispDmStage, str, Callable[[dict], dict | None]]] = field(
        default_factory=list
    )
    log: list[StageRun] = field(default_factory=list)

    def register(
        self,
        stage: CrispDmStage,
        name: str,
        task: Callable[[dict], dict | None],
    ) -> "CrispDmPipeline":
        """Add a task; returns self for chaining."""
        self.tasks.append((stage, name, task))
        return self

    def stage_names(self, stage: CrispDmStage) -> list[str]:
        return [name for s, name, _t in self.tasks if s is stage]

    def run(self, context: dict | None = None) -> dict:
        """Execute all tasks in CRISP-DM order over the context."""
        if not self.tasks:
            raise ReproError("pipeline has no registered tasks")
        context = dict(context or {})
        self.log = []
        ordered = sorted(
            enumerate(self.tasks),
            key=lambda item: (_STAGE_ORDER.index(item[1][0]), item[0]),
        )
        for _idx, (stage, name, task) in ordered:
            started = time.perf_counter()
            produced = task(context)
            elapsed = time.perf_counter() - started
            outputs: tuple[str, ...] = ()
            if produced is not None:
                if not isinstance(produced, dict):
                    raise ReproError(
                        f"stage task {name!r} must return a dict or None, "
                        f"got {type(produced).__name__}"
                    )
                context.update(produced)
                outputs = tuple(produced)
            self.log.append(StageRun(stage, name, elapsed, outputs))
        return context

    def describe(self) -> str:
        """Human-readable plan (or run log, after execution)."""
        lines = []
        if self.log:
            for run in self.log:
                outs = ", ".join(run.outputs) if run.outputs else "-"
                lines.append(
                    f"[{run.stage.value}] {run.name} "
                    f"({run.seconds:.2f}s) -> {outs}"
                )
        else:
            for stage, name, _task in self.tasks:
                lines.append(f"[{stage.value}] {name}")
        return "\n".join(lines)
