"""The paper's contribution: crash-proneness threshold methodology."""

from repro.core.assessment import (
    ClassifierAssessment,
    ThresholdSelection,
    assess_scores,
    select_best_threshold,
)
from repro.core.clustering_analysis import (
    ClusterCrashProfile,
    ClusteringAnalysis,
    analyse_clusters,
    run_phase3_clustering,
)
from repro.core.attribute_analysis import (
    AttributeCorrelation,
    AttributeSignature,
    attribute_crash_correlations,
    cluster_attribute_signatures,
    tree_feature_importance,
)
from repro.core.crisp_dm import CrispDmPipeline, CrispDmStage, StageRun
from repro.core.model_quality import (
    QualityPoint,
    QualityProfile,
    train_validation_profile,
)
from repro.core.deployment import CrashPronenessScorer, SegmentScore
from repro.core.wet_dry import WetDryResult, wet_dry_analysis
from repro.core.reporting import (
    format_cell,
    render_box_ranges,
    render_histogram,
    render_series,
    render_table,
)
from repro.core.study import (
    CrashPronenessStudy,
    PhaseResult,
    StudyReport,
    SupportingModelResult,
    TreeModelResult,
)
from repro.core.thresholds import (
    CRASH_COUNT_COLUMN,
    NEGATIVE_LABEL,
    PHASE1_THRESHOLDS,
    PHASE2_THRESHOLDS,
    POSITIVE_LABEL,
    TARGET_COLUMN,
    ThresholdDataset,
    build_threshold_dataset,
    build_threshold_series,
    table1_rows,
)

__all__ = [
    "ClassifierAssessment",
    "ThresholdSelection",
    "assess_scores",
    "select_best_threshold",
    "ClusterCrashProfile",
    "ClusteringAnalysis",
    "analyse_clusters",
    "run_phase3_clustering",
    "CrispDmPipeline",
    "CrispDmStage",
    "StageRun",
    "CrashPronenessScorer",
    "SegmentScore",
    "AttributeSignature",
    "AttributeCorrelation",
    "cluster_attribute_signatures",
    "attribute_crash_correlations",
    "tree_feature_importance",
    "WetDryResult",
    "wet_dry_analysis",
    "QualityPoint",
    "QualityProfile",
    "train_validation_profile",
    "CrashPronenessStudy",
    "PhaseResult",
    "StudyReport",
    "SupportingModelResult",
    "TreeModelResult",
    "ThresholdDataset",
    "build_threshold_dataset",
    "build_threshold_series",
    "table1_rows",
    "CRASH_COUNT_COLUMN",
    "TARGET_COLUMN",
    "NEGATIVE_LABEL",
    "POSITIVE_LABEL",
    "PHASE1_THRESHOLDS",
    "PHASE2_THRESHOLDS",
    "format_cell",
    "render_table",
    "render_series",
    "render_histogram",
    "render_box_ranges",
]
