"""The crash-proneness study: phases 1–3 orchestration.

This is the paper's primary contribution as an executable object.

* **Phase 1** — threshold sweep over the crash + zero-altered no-crash
  table (Table 3): per threshold, an F-test regression tree (validation
  R², leaf count) and a chi-square decision tree (NPV, PPV,
  misclassification, leaf count) on a train/validation split.
* **Phase 2** — the same sweep over the crash-only table (Table 4).
* **Supporting sweeps** — naive Bayes (Table 5), logistic regression
  and neural networks under 10-fold cross-validation, and M5 model
  trees as an interval-target comparison.
* **Phase 3** — 32-cluster k-means on the crash-only data at the
  selected threshold, with the crash-count range analysis and ANOVA
  (Figure 4).
* **Threshold selection** — MCPV peak/plateau rule combining phases 1
  and 2 ("the best combination results ... is between thresholds 4 and
  8 crashes").

``run_full_study`` wires all of it through the CRISP-DM pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assessment import (
    ClassifierAssessment,
    ThresholdSelection,
    assess_scores,
    select_best_threshold,
)
from repro.core.clustering_analysis import (
    ClusteringAnalysis,
    run_phase3_clustering,
)
from repro.core.crisp_dm import CrispDmPipeline, CrispDmStage
from repro.core.thresholds import (
    PHASE1_THRESHOLDS,
    PHASE2_THRESHOLDS,
    TARGET_COLUMN,
    ThresholdDataset,
    build_threshold_dataset,
)
from repro.datatable import DataTable
from repro.evaluation import cross_val_scores, r_squared, train_valid_split
from repro.exceptions import EvaluationError
from repro.mining import (
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    M5ModelTree,
    NaiveBayesClassifier,
    NeuralNetworkClassifier,
    RegressionTree,
    TreeConfig,
)
from repro.roads.generator import RoadCrashDataset

__all__ = [
    "TreeModelResult",
    "PhaseResult",
    "SupportingModelResult",
    "StudyReport",
    "CrashPronenessStudy",
]


@dataclass(frozen=True)
class TreeModelResult:
    """One row of Table 3 / Table 4."""

    threshold: int
    n_non_prone: int
    n_prone: int
    r_squared: float
    regression_leaves: int
    npv: float
    ppv: float
    misclassification_rate: float
    decision_leaves: int
    assessment: ClassifierAssessment

    @property
    def mcpv(self) -> float:
        return self.assessment.mcpv

    @property
    def kappa(self) -> float:
        return self.assessment.kappa


@dataclass
class PhaseResult:
    """All thresholds of one modelling phase."""

    phase: int
    results: list[TreeModelResult] = field(default_factory=list)

    def thresholds(self) -> list[int]:
        return [r.threshold for r in self.results]

    def series(self, attribute: str) -> dict[int, float]:
        """threshold → value of one result attribute (e.g. 'mcpv')."""
        return {
            r.threshold: float(getattr(r, attribute)) for r in self.results
        }

    def mcpv_series(self) -> dict[int, float]:
        return self.series("mcpv")

    def r_squared_series(self) -> dict[int, float]:
        return self.series("r_squared")


@dataclass(frozen=True)
class SupportingModelResult:
    """One row of Table 5 (or its logistic / neural analogue)."""

    model: str
    threshold: int
    assessment: ClassifierAssessment

    @property
    def mcpv(self) -> float:
        return self.assessment.mcpv

    @property
    def kappa(self) -> float:
        return self.assessment.kappa


@dataclass
class StudyReport:
    """The full study outcome."""

    phase1: PhaseResult
    phase2: PhaseResult
    bayes: list[SupportingModelResult]
    selection: ThresholdSelection
    clustering: ClusteringAnalysis
    pipeline_log: str


class CrashPronenessStudy:
    """Executable reproduction of the paper's modelling methodology.

    Parameters
    ----------
    dataset:
        A generated :class:`~repro.roads.generator.RoadCrashDataset`.
    tree_config:
        Growth parameters shared by all tree fits.  ``None`` (default)
        auto-scales the minimum leaf size with the data: phase-2
        instances duplicate each segment's attribute row once per
        crash, so leaves small relative to a segment's crash count
        would memorise individual segments across the train/validation
        split.  The paper's own leaf counts (6–160 leaves on 16,750
        instances) imply comparably large leaves.
    train_fraction:
        The train/validation split used for the tree models.
    seed:
        Seeds all splits and model initialisations.
    repeats:
        Independent train/validation repetitions per threshold; the
        validation predictions are pooled before assessment.  1 matches
        the paper's single split; 2–3 stabilise the synthetic tables.
    """

    def __init__(
        self,
        dataset: RoadCrashDataset,
        tree_config: TreeConfig | None = None,
        train_fraction: float = 0.6,
        seed: int = 0,
        repeats: int = 1,
    ):
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.dataset = dataset
        self.tree_config = tree_config
        self.train_fraction = train_fraction
        self.seed = seed
        self.repeats = repeats

    # -- shared mechanics -------------------------------------------------
    def _config_for(self, dataset: ThresholdDataset) -> TreeConfig:
        if self.tree_config is not None:
            return self.tree_config
        n_rows = dataset.table.n_rows
        # Instance tables duplicate a segment's attribute row once per
        # crash; a leaf smaller than ~1.3x the largest segment count
        # could isolate a single road and "validate" on its own copies.
        from repro.core.thresholds import CRASH_COUNT_COLUMN

        max_count = float(
            np.nanmax(dataset.table.numeric(CRASH_COUNT_COLUMN))
        )
        min_leaf = max(25, n_rows // 150, int(1.3 * max_count))
        return TreeConfig(
            min_leaf=min_leaf,
            min_split=max(60, int(2.5 * min_leaf)),
            max_leaves=160,
        )

    def _fit_trees_at(
        self, dataset: ThresholdDataset, split_seed: int
    ) -> TreeModelResult:
        config = self._config_for(dataset)
        pooled_actual: list[np.ndarray] = []
        pooled_scores: list[np.ndarray] = []
        pooled_regression: list[np.ndarray] = []
        decision_leaves: list[int] = []
        regression_leaves: list[int] = []
        for repeat in range(self.repeats):
            rng = np.random.default_rng(split_seed + 7919 * repeat)
            split = train_valid_split(
                dataset.table,
                rng,
                self.train_fraction,
                stratify_by=TARGET_COLUMN,
            )
            decision = DecisionTreeClassifier(config).fit(
                split.train, TARGET_COLUMN
            )
            valid_dataset = build_threshold_dataset(
                split.valid, dataset.threshold
            )
            pooled_actual.append(valid_dataset.target_vector())
            pooled_scores.append(decision.predict_proba(split.valid))
            decision_leaves.append(decision.n_leaves)
            regression = RegressionTree(config).fit(
                split.train, TARGET_COLUMN
            )
            pooled_regression.append(regression.predict(split.valid))
            regression_leaves.append(regression.n_leaves)
        actual = np.concatenate(pooled_actual)
        assessment = assess_scores(actual, np.concatenate(pooled_scores))
        r2 = r_squared(
            actual.astype(np.float64), np.concatenate(pooled_regression)
        )
        return TreeModelResult(
            threshold=dataset.threshold,
            n_non_prone=dataset.n_non_prone,
            n_prone=dataset.n_prone,
            r_squared=r2,
            regression_leaves=int(round(np.mean(regression_leaves))),
            npv=assessment.npv,
            ppv=assessment.ppv,
            misclassification_rate=assessment.misclassification_rate,
            decision_leaves=int(round(np.mean(decision_leaves))),
            assessment=assessment,
        )

    def _sweep(
        self, table: DataTable, thresholds: tuple[int, ...], phase: int
    ) -> PhaseResult:
        result = PhaseResult(phase=phase)
        for offset, threshold in enumerate(sorted(thresholds)):
            dataset = build_threshold_dataset(table, threshold)
            if min(dataset.n_non_prone, dataset.n_prone) == 0:
                continue  # no minority class at all; nothing to model
            result.results.append(
                self._fit_trees_at(dataset, self.seed + 101 * offset)
            )
        if not result.results:
            raise EvaluationError(
                f"phase {phase}: no threshold produced a two-class dataset"
            )
        return result

    # -- phases --------------------------------------------------------------
    def run_phase1(
        self, thresholds: tuple[int, ...] = PHASE1_THRESHOLDS
    ) -> PhaseResult:
        """Tree sweep over the crash + no-crash table (Table 3)."""
        return self._sweep(
            self.dataset.combined_instances(), thresholds, phase=1
        )

    def run_phase2(
        self, thresholds: tuple[int, ...] = PHASE2_THRESHOLDS
    ) -> PhaseResult:
        """Tree sweep over the crash-only table (Table 4)."""
        return self._sweep(self.dataset.crash_instances, thresholds, phase=2)

    def run_segment_level_sweep(
        self, thresholds: tuple[int, ...] = PHASE2_THRESHOLDS
    ) -> PhaseResult:
        """Extension: the phase-2 sweep with one row per *segment*.

        The paper's unit of analysis is the crash instance, which
        duplicates each segment's attribute row once per crash — the
        very mechanism it flags at CP-64 ("crashes referencing the same
        road segment").  This variant models the crash segments
        directly (each road counted once), removing the duplication.
        Class counts then reflect segments, so the extreme thresholds
        are *even more* imbalanced, but no leaf can span copies of one
        road across the train/validation split.
        """
        crash_segments = self.dataset.segment_table.filter(
            self.dataset.segment_table.numeric("segment_crash_count") > 0
        )
        return self._sweep(crash_segments, thresholds, phase=4)

    def run_supporting_sweep(
        self,
        model: str = "bayes",
        thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        folds: int = 10,
    ) -> list[SupportingModelResult]:
        """10-fold CV sweep of a supporting classifier on crash-only data.

        ``model`` is one of 'bayes', 'logistic', 'neural'.
        """
        factories = {
            "bayes": lambda: NaiveBayesClassifier(),
            "logistic": lambda: LogisticRegressionClassifier(),
            "neural": lambda: NeuralNetworkClassifier(
                epochs=150, seed=self.seed
            ),
        }
        if model not in factories:
            raise ValueError(
                f"model must be one of {sorted(factories)}, got {model!r}"
            )
        results: list[SupportingModelResult] = []
        for offset, threshold in enumerate(sorted(thresholds)):
            dataset = build_threshold_dataset(
                self.dataset.crash_instances, threshold
            )
            y = dataset.target_vector()
            if min(int(y.sum()), int((1 - y).sum())) < folds:
                continue  # cannot stratify this few minority rows
            rng = np.random.default_rng(self.seed + 977 * offset)
            actual, scores = cross_val_scores(
                factories[model],
                dataset.table,
                TARGET_COLUMN,
                y,
                folds,
                rng,
            )
            results.append(
                SupportingModelResult(
                    model=model,
                    threshold=threshold,
                    assessment=assess_scores(actual, scores),
                )
            )
        return results

    def run_m5_sweep(
        self, thresholds: tuple[int, ...] = PHASE2_THRESHOLDS
    ) -> dict[int, float]:
        """M5 model-tree validation R² per threshold (interval target)."""
        out: dict[int, float] = {}
        for offset, threshold in enumerate(sorted(thresholds)):
            dataset = build_threshold_dataset(
                self.dataset.crash_instances, threshold
            )
            if min(dataset.n_non_prone, dataset.n_prone) == 0:
                continue
            rng = np.random.default_rng(self.seed + 389 * offset)
            split = train_valid_split(
                dataset.table, rng, self.train_fraction,
                stratify_by=TARGET_COLUMN,
            )
            model = M5ModelTree().fit(split.train, TARGET_COLUMN)
            valid = build_threshold_dataset(split.valid, threshold)
            actual = valid.target_vector().astype(np.float64)
            out[threshold] = r_squared(actual, model.predict(split.valid))
        return out

    def run_phase3(
        self, threshold: int = 8, n_clusters: int = 32
    ) -> ClusteringAnalysis:
        """K-means crash-count range analysis at the selected threshold."""
        del threshold  # phase 3 clusters the full crash-only data; the
        # selected threshold names the model but does not alter inputs.
        return run_phase3_clustering(
            self.dataset.crash_instances,
            n_clusters=n_clusters,
            seed=self.seed,
        )

    # -- selection ----------------------------------------------------------
    def select_threshold(
        self,
        phase1: PhaseResult,
        phase2: PhaseResult,
        plateau_tolerance: float = 0.02,
    ) -> ThresholdSelection:
        """Combine both phases' MCPV curves with the paper's rule.

        For thresholds present in both phases the *minimum* of the two
        MCPVs is used (a threshold must hold up in both datasets),
        mirroring how the paper reads its "best combination results".
        """
        curve1 = phase1.mcpv_series()
        curve2 = phase2.mcpv_series()
        combined: dict[int, float] = {}
        for threshold in sorted(set(curve1) | set(curve2)):
            values = [
                c[threshold] for c in (curve1, curve2) if threshold in c
            ]
            usable = [v for v in values if not np.isnan(v)]
            combined[threshold] = min(usable) if usable else float("nan")
        return select_best_threshold(
            combined, metric="mcpv", plateau_tolerance=plateau_tolerance
        )

    # -- the full CRISP-DM run -------------------------------------------------
    def run_full_study(
        self,
        phase1_thresholds: tuple[int, ...] = PHASE1_THRESHOLDS,
        phase2_thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        n_clusters: int = 32,
    ) -> StudyReport:
        """Execute the complete study through the CRISP-DM pipeline."""
        pipeline = CrispDmPipeline()
        pipeline.register(
            CrispDmStage.DATA_UNDERSTANDING,
            "profile instance tables",
            lambda ctx: {
                "n_crash_instances": self.dataset.n_crash_instances,
                "n_no_crash_instances": self.dataset.n_no_crash_instances,
            },
        )
        pipeline.register(
            CrispDmStage.MODELING,
            "phase 1 tree sweep (crash + no-crash)",
            lambda ctx: {"phase1": self.run_phase1(phase1_thresholds)},
        )
        pipeline.register(
            CrispDmStage.MODELING,
            "phase 2 tree sweep (crash only)",
            lambda ctx: {"phase2": self.run_phase2(phase2_thresholds)},
        )
        pipeline.register(
            CrispDmStage.MODELING,
            "supporting naive Bayes sweep",
            lambda ctx: {
                "bayes": self.run_supporting_sweep(
                    "bayes", phase2_thresholds
                )
            },
        )
        pipeline.register(
            CrispDmStage.EVALUATION,
            "threshold selection (MCPV plateau rule)",
            lambda ctx: {
                "selection": self.select_threshold(
                    ctx["phase1"], ctx["phase2"]
                )
            },
        )
        pipeline.register(
            CrispDmStage.EVALUATION,
            "phase 3 clustering at the selected threshold",
            lambda ctx: {
                "clustering": self.run_phase3(
                    ctx["selection"].selected_threshold, n_clusters
                )
            },
        )
        context = pipeline.run()
        return StudyReport(
            phase1=context["phase1"],
            phase2=context["phase2"],
            bayes=context["bayes"],
            selection=context["selection"],
            clustering=context["clustering"],
            pipeline_log=pipeline.describe(),
        )
