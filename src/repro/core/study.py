"""The crash-proneness study: phases 1–3 orchestration.

This is the paper's primary contribution as an executable object.

* **Phase 1** — threshold sweep over the crash + zero-altered no-crash
  table (Table 3): per threshold, an F-test regression tree (validation
  R², leaf count) and a chi-square decision tree (NPV, PPV,
  misclassification, leaf count) on a train/validation split.
* **Phase 2** — the same sweep over the crash-only table (Table 4).
* **Supporting sweeps** — naive Bayes (Table 5), logistic regression
  and neural networks under 10-fold cross-validation, and M5 model
  trees as an interval-target comparison.
* **Phase 3** — 32-cluster k-means on the crash-only data at the
  selected threshold, with the crash-count range analysis and ANOVA
  (Figure 4).
* **Threshold selection** — MCPV peak/plateau rule combining phases 1
  and 2 ("the best combination results ... is between thresholds 4 and
  8 crashes").

Every ``(threshold, model)`` fit is independent, so the sweeps dispatch
through :class:`~repro.parallel.executor.SweepExecutor`: ``n_jobs=1``
(default) runs the deterministic serial backend, ``n_jobs=N`` a process
pool whose output is bit-identical because each task derives its own
seed from the study seed and its threshold offset.  A shared
:class:`~repro.parallel.cache.ThresholdDatasetCache` builds each CP-k
dataset once per source table instead of once per model family.

``run_full_study`` wires all of it through the CRISP-DM pipeline and
threads the executor's :class:`~repro.parallel.timing.StageTimings`
into the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assessment import (
    ClassifierAssessment,
    ThresholdSelection,
    assess_scores,
    select_best_threshold,
)
from repro.core.clustering_analysis import (
    ClusteringAnalysis,
    run_phase3_clustering,
)
from repro.core.crisp_dm import CrispDmPipeline, CrispDmStage
from repro.core.thresholds import (
    PHASE1_THRESHOLDS,
    PHASE2_THRESHOLDS,
    TARGET_COLUMN,
    ThresholdDataset,
    build_threshold_dataset,
)
from repro.datatable import DataTable
from repro.evaluation import cross_val_scores, r_squared, train_valid_split
from repro.exceptions import ConfigurationError, EvaluationError
from repro.mining import (
    DecisionTreeClassifier,
    LogisticRegressionClassifier,
    M5ModelTree,
    NaiveBayesClassifier,
    NeuralNetworkClassifier,
    RegressionTree,
    TreeConfig,
)
from repro.obs.trace import span as obs_span
from repro.parallel.cache import ThresholdDatasetCache
from repro.parallel.executor import SweepExecutor
from repro.parallel.tasks import SweepTask
from repro.parallel.timing import StageTimings
from repro.roads.generator import RoadCrashDataset

__all__ = [
    "TreeModelResult",
    "PhaseResult",
    "SupportingModelResult",
    "StudyReport",
    "CrashPronenessStudy",
    "fit_tree_models",
    "fit_supporting_model",
    "fit_m5_model",
]


@dataclass(frozen=True)
class TreeModelResult:
    """One row of Table 3 / Table 4."""

    threshold: int
    n_non_prone: int
    n_prone: int
    r_squared: float
    regression_leaves: int
    npv: float
    ppv: float
    misclassification_rate: float
    decision_leaves: int
    assessment: ClassifierAssessment

    @property
    def mcpv(self) -> float:
        return self.assessment.mcpv

    @property
    def kappa(self) -> float:
        return self.assessment.kappa


@dataclass
class PhaseResult:
    """All thresholds of one modelling phase."""

    phase: int
    results: list[TreeModelResult] = field(default_factory=list)

    def thresholds(self) -> list[int]:
        return [r.threshold for r in self.results]

    def series(self, attribute: str) -> dict[int, float]:
        """threshold → value of one result attribute (e.g. 'mcpv')."""
        return {
            r.threshold: float(getattr(r, attribute)) for r in self.results
        }

    def mcpv_series(self) -> dict[int, float]:
        return self.series("mcpv")

    def r_squared_series(self) -> dict[int, float]:
        return self.series("r_squared")


@dataclass(frozen=True)
class SupportingModelResult:
    """One row of Table 5 (or its logistic / neural analogue)."""

    model: str
    threshold: int
    assessment: ClassifierAssessment

    @property
    def mcpv(self) -> float:
        return self.assessment.mcpv

    @property
    def kappa(self) -> float:
        return self.assessment.kappa


@dataclass
class StudyReport:
    """The full study outcome.

    ``timings`` is a measurement, not a result: two runs of the same
    study yield identical model values but different wall clocks, so
    result comparisons must ignore it.
    """

    phase1: PhaseResult
    phase2: PhaseResult
    bayes: list[SupportingModelResult]
    selection: ThresholdSelection
    clustering: ClusteringAnalysis
    pipeline_log: str
    timings: StageTimings | None = None


# -- picklable task bodies ---------------------------------------------------
# These module-level functions are the sweep DAG's task payloads: every
# input (data, config, derived seed) arrives as an argument, so a task's
# result is independent of backend and execution order.


def fit_tree_models(
    dataset: ThresholdDataset,
    split_seed: int,
    config: TreeConfig,
    train_fraction: float,
    repeats: int,
) -> TreeModelResult:
    """Fit the paper's regression + decision tree pair at one threshold.

    The validation scans (``predict_proba`` / ``predict`` on the held-out
    split) run through each tree's compiled scoring plan
    (:mod:`repro.mining.tree.compile`), which is bit-identical to the
    interpreted router — the pooled Table 3/4 statistics are unaffected.
    """
    pooled_actual: list[np.ndarray] = []
    pooled_scores: list[np.ndarray] = []
    pooled_regression: list[np.ndarray] = []
    decision_leaves: list[int] = []
    regression_leaves: list[int] = []
    for repeat in range(repeats):
        rng = np.random.default_rng(split_seed + 7919 * repeat)
        split = train_valid_split(
            dataset.table,
            rng,
            train_fraction,
            stratify_by=TARGET_COLUMN,
        )
        decision = DecisionTreeClassifier(config).fit(
            split.train, TARGET_COLUMN
        )
        valid_dataset = build_threshold_dataset(
            split.valid, dataset.threshold
        )
        pooled_actual.append(valid_dataset.target_vector())
        pooled_scores.append(decision.predict_proba(split.valid))
        decision_leaves.append(decision.n_leaves)
        regression = RegressionTree(config).fit(split.train, TARGET_COLUMN)
        pooled_regression.append(regression.predict(split.valid))
        regression_leaves.append(regression.n_leaves)
    actual = np.concatenate(pooled_actual)
    assessment = assess_scores(actual, np.concatenate(pooled_scores))
    r2 = r_squared(
        actual.astype(np.float64), np.concatenate(pooled_regression)
    )
    return TreeModelResult(
        threshold=dataset.threshold,
        n_non_prone=dataset.n_non_prone,
        n_prone=dataset.n_prone,
        r_squared=r2,
        regression_leaves=int(round(np.mean(regression_leaves))),
        npv=assessment.npv,
        ppv=assessment.ppv,
        misclassification_rate=assessment.misclassification_rate,
        decision_leaves=int(round(np.mean(decision_leaves))),
        assessment=assessment,
    )


_SUPPORTING_MODELS = ("bayes", "logistic", "neural")


def _supporting_factory(model: str, model_seed: int):
    if model == "bayes":
        return lambda: NaiveBayesClassifier()
    if model == "logistic":
        return lambda: LogisticRegressionClassifier()
    if model == "neural":
        return lambda: NeuralNetworkClassifier(epochs=150, seed=model_seed)
    raise ConfigurationError(
        f"model must be one of {sorted(_SUPPORTING_MODELS)}, got {model!r}"
    )


def fit_supporting_model(
    model: str,
    dataset: ThresholdDataset,
    folds: int,
    cv_seed: int,
    model_seed: int,
) -> SupportingModelResult:
    """One supporting-model CV run (a Table 5 row) at one threshold."""
    rng = np.random.default_rng(cv_seed)
    actual, scores = cross_val_scores(
        _supporting_factory(model, model_seed),
        dataset.table,
        TARGET_COLUMN,
        dataset.target_vector(),
        folds,
        rng,
    )
    return SupportingModelResult(
        model=model,
        threshold=dataset.threshold,
        assessment=assess_scores(actual, scores),
    )


def fit_m5_model(
    dataset: ThresholdDataset, split_seed: int, train_fraction: float
) -> float:
    """Validation R² of an M5 model tree at one threshold."""
    rng = np.random.default_rng(split_seed)
    split = train_valid_split(
        dataset.table, rng, train_fraction, stratify_by=TARGET_COLUMN
    )
    model = M5ModelTree().fit(split.train, TARGET_COLUMN)
    valid = build_threshold_dataset(split.valid, dataset.threshold)
    actual = valid.target_vector().astype(np.float64)
    return r_squared(actual, model.predict(split.valid))


class CrashPronenessStudy:
    """Executable reproduction of the paper's modelling methodology.

    Parameters
    ----------
    dataset:
        A generated :class:`~repro.roads.generator.RoadCrashDataset`.
    tree_config:
        Growth parameters shared by all tree fits.  ``None`` (default)
        auto-scales the minimum leaf size with the data: phase-2
        instances duplicate each segment's attribute row once per
        crash, so leaves small relative to a segment's crash count
        would memorise individual segments across the train/validation
        split.  The paper's own leaf counts (6–160 leaves on 16,750
        instances) imply comparably large leaves.
    train_fraction:
        The train/validation split used for the tree models.
    seed:
        Seeds all splits and model initialisations.
    repeats:
        Independent train/validation repetitions per threshold; the
        validation predictions are pooled before assessment.  1 matches
        the paper's single split; 2–3 stabilise the synthetic tables.
    """

    def __init__(
        self,
        dataset: RoadCrashDataset,
        tree_config: TreeConfig | None = None,
        train_fraction: float = 0.6,
        seed: int = 0,
        repeats: int = 1,
    ):
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        self.dataset = dataset
        self.tree_config = tree_config
        self.train_fraction = train_fraction
        self.seed = seed
        self.repeats = repeats

    # -- shared mechanics -------------------------------------------------
    def _config_for(self, dataset: ThresholdDataset) -> TreeConfig:
        if self.tree_config is not None:
            return self.tree_config
        n_rows = dataset.table.n_rows
        # Instance tables duplicate a segment's attribute row once per
        # crash; a leaf smaller than ~1.3x the largest segment count
        # could isolate a single road and "validate" on its own copies.
        from repro.core.thresholds import CRASH_COUNT_COLUMN

        max_count = float(
            np.nanmax(dataset.table.numeric(CRASH_COUNT_COLUMN))
        )
        min_leaf = max(25, n_rows // 150, int(1.3 * max_count))
        return TreeConfig(
            min_leaf=min_leaf,
            min_split=max(60, int(2.5 * min_leaf)),
            max_leaves=160,
        )

    def _fit_trees_at(
        self, dataset: ThresholdDataset, split_seed: int
    ) -> TreeModelResult:
        """One tree-pair fit, serial and in-process (bench unit)."""
        return fit_tree_models(
            dataset,
            split_seed,
            self._config_for(dataset),
            self.train_fraction,
            self.repeats,
        )

    def _threshold_datasets(
        self,
        table: DataTable,
        thresholds: tuple[int, ...],
        cache: ThresholdDatasetCache | None,
    ) -> list[tuple[int, ThresholdDataset]]:
        """(offset, CP-k dataset) per sorted threshold, cache-aware.

        The offset indexes the *sorted* threshold list including any
        later-skipped entries — per-task seeds derive from it, so a
        threshold's seed never depends on which other thresholds
        survive class-count filtering.
        """
        build = cache.get if cache is not None else build_threshold_dataset
        with obs_span(
            "study.build_datasets",
            n_thresholds=len(thresholds),
            cached=cache is not None,
        ):
            return [
                (offset, build(table, threshold))
                for offset, threshold in enumerate(sorted(thresholds))
            ]

    def _sweep(
        self,
        table: DataTable,
        thresholds: tuple[int, ...],
        phase: int,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> PhaseResult:
        tasks: list[SweepTask] = []
        attempted: list[ThresholdDataset] = []
        for offset, dataset in self._threshold_datasets(
            table, thresholds, cache
        ):
            attempted.append(dataset)
            if min(dataset.n_non_prone, dataset.n_prone) == 0:
                continue  # no minority class at all; nothing to model
            tasks.append(
                SweepTask(
                    key=f"phase{phase}/cp-{dataset.threshold}",
                    fn=fit_tree_models,
                    args=(
                        dataset,
                        self.seed + 101 * offset,
                        self._config_for(dataset),
                        self.train_fraction,
                        self.repeats,
                    ),
                    stage=f"phase{phase}",
                    threshold=dataset.threshold,
                )
            )
        if not tasks:
            class_counts = "; ".join(
                f"CP-{d.threshold}: {d.n_non_prone} non-prone / "
                f"{d.n_prone} prone"
                for d in attempted
            )
            raise EvaluationError(
                f"phase {phase}: no threshold produced a two-class "
                f"dataset (attempted thresholds "
                f"{sorted(thresholds)}; {class_counts})"
            )
        own_executor = executor is None
        if own_executor:
            executor = SweepExecutor(n_jobs=1)
        try:
            outputs = executor.run(tasks, stage=f"phase{phase}")
        finally:
            if own_executor:
                executor.shutdown()
        return PhaseResult(
            phase=phase, results=[r.value for r in outputs]
        )

    # -- phases --------------------------------------------------------------
    def run_phase1(
        self,
        thresholds: tuple[int, ...] = PHASE1_THRESHOLDS,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> PhaseResult:
        """Tree sweep over the crash + no-crash table (Table 3)."""
        return self._sweep(
            self.dataset.combined_instances(),
            thresholds,
            phase=1,
            executor=executor,
            cache=cache,
        )

    def run_phase2(
        self,
        thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> PhaseResult:
        """Tree sweep over the crash-only table (Table 4)."""
        return self._sweep(
            self.dataset.crash_instances,
            thresholds,
            phase=2,
            executor=executor,
            cache=cache,
        )

    def run_segment_level_sweep(
        self,
        thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> PhaseResult:
        """Extension: the phase-2 sweep with one row per *segment*.

        The paper's unit of analysis is the crash instance, which
        duplicates each segment's attribute row once per crash — the
        very mechanism it flags at CP-64 ("crashes referencing the same
        road segment").  This variant models the crash segments
        directly (each road counted once), removing the duplication.
        Class counts then reflect segments, so the extreme thresholds
        are *even more* imbalanced, but no leaf can span copies of one
        road across the train/validation split.
        """
        crash_segments = self.dataset.segment_table.filter(
            self.dataset.segment_table.numeric("segment_crash_count") > 0
        )
        return self._sweep(
            crash_segments,
            thresholds,
            phase=4,
            executor=executor,
            cache=cache,
        )

    def run_supporting_sweep(
        self,
        model: str = "bayes",
        thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        folds: int = 10,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> list[SupportingModelResult]:
        """10-fold CV sweep of a supporting classifier on crash-only data.

        ``model`` is one of 'bayes', 'logistic', 'neural'.
        """
        _supporting_factory(model, self.seed)  # validate the name early
        tasks: list[SweepTask] = []
        for offset, dataset in self._threshold_datasets(
            self.dataset.crash_instances, thresholds, cache
        ):
            y = dataset.target_vector()
            if min(int(y.sum()), int((1 - y).sum())) < folds:
                continue  # cannot stratify this few minority rows
            tasks.append(
                SweepTask(
                    key=f"{model}/cp-{dataset.threshold}",
                    fn=fit_supporting_model,
                    args=(
                        model,
                        dataset,
                        folds,
                        self.seed + 977 * offset,
                        self.seed,
                    ),
                    stage=f"supporting-{model}",
                    threshold=dataset.threshold,
                )
            )
        own_executor = executor is None
        if own_executor:
            executor = SweepExecutor(n_jobs=1)
        try:
            outputs = executor.run(tasks, stage=f"supporting-{model}")
        finally:
            if own_executor:
                executor.shutdown()
        return [r.value for r in outputs]

    def run_m5_sweep(
        self,
        thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        executor: SweepExecutor | None = None,
        cache: ThresholdDatasetCache | None = None,
    ) -> dict[int, float]:
        """M5 model-tree validation R² per threshold (interval target)."""
        tasks: list[SweepTask] = []
        for offset, dataset in self._threshold_datasets(
            self.dataset.crash_instances, thresholds, cache
        ):
            if min(dataset.n_non_prone, dataset.n_prone) == 0:
                continue
            tasks.append(
                SweepTask(
                    key=f"m5/cp-{dataset.threshold}",
                    fn=fit_m5_model,
                    args=(
                        dataset,
                        self.seed + 389 * offset,
                        self.train_fraction,
                    ),
                    stage="m5",
                    threshold=dataset.threshold,
                )
            )
        own_executor = executor is None
        if own_executor:
            executor = SweepExecutor(n_jobs=1)
        try:
            outputs = executor.run(tasks, stage="m5")
        finally:
            if own_executor:
                executor.shutdown()
        return {r.threshold: r.value for r in outputs}

    def run_phase3(
        self, threshold: int = 8, n_clusters: int = 32
    ) -> ClusteringAnalysis:
        """K-means crash-count range analysis at the selected threshold."""
        del threshold  # phase 3 clusters the full crash-only data; the
        # selected threshold names the model but does not alter inputs.
        return run_phase3_clustering(
            self.dataset.crash_instances,
            n_clusters=n_clusters,
            seed=self.seed,
        )

    # -- selection ----------------------------------------------------------
    def select_threshold(
        self,
        phase1: PhaseResult,
        phase2: PhaseResult,
        plateau_tolerance: float = 0.02,
    ) -> ThresholdSelection:
        """Combine both phases' MCPV curves with the paper's rule.

        For thresholds present in both phases the *minimum* of the two
        MCPVs is used (a threshold must hold up in both datasets),
        mirroring how the paper reads its "best combination results".
        """
        curve1 = phase1.mcpv_series()
        curve2 = phase2.mcpv_series()
        combined: dict[int, float] = {}
        for threshold in sorted(set(curve1) | set(curve2)):
            values = [
                c[threshold] for c in (curve1, curve2) if threshold in c
            ]
            usable = [v for v in values if not np.isnan(v)]
            combined[threshold] = min(usable) if usable else float("nan")
        return select_best_threshold(
            combined, metric="mcpv", plateau_tolerance=plateau_tolerance
        )

    # -- the full CRISP-DM run -------------------------------------------------
    def run_full_study(
        self,
        phase1_thresholds: tuple[int, ...] = PHASE1_THRESHOLDS,
        phase2_thresholds: tuple[int, ...] = PHASE2_THRESHOLDS,
        n_clusters: int = 32,
        n_jobs: int | None = 1,
    ) -> StudyReport:
        """Execute the complete study through the CRISP-DM pipeline.

        ``n_jobs`` selects the sweep backend: ``1`` (default) runs
        serially in-process; any other value dispatches the
        ``(threshold, model)`` fits over a process pool.  Model outputs
        are bit-identical either way — only ``StudyReport.timings``
        differs.
        """
        cache = ThresholdDatasetCache()
        with obs_span(
            "study.run_full_study", n_jobs=n_jobs, seed=self.seed
        ), SweepExecutor(n_jobs=n_jobs) as executor:
            pipeline = CrispDmPipeline()
            pipeline.register(
                CrispDmStage.DATA_UNDERSTANDING,
                "profile instance tables",
                lambda ctx: {
                    "n_crash_instances": self.dataset.n_crash_instances,
                    "n_no_crash_instances": self.dataset.n_no_crash_instances,
                },
            )
            pipeline.register(
                CrispDmStage.MODELING,
                "phase 1 tree sweep (crash + no-crash)",
                lambda ctx: {
                    "phase1": self.run_phase1(
                        phase1_thresholds, executor=executor, cache=cache
                    )
                },
            )
            pipeline.register(
                CrispDmStage.MODELING,
                "phase 2 tree sweep (crash only)",
                lambda ctx: {
                    "phase2": self.run_phase2(
                        phase2_thresholds, executor=executor, cache=cache
                    )
                },
            )
            pipeline.register(
                CrispDmStage.MODELING,
                "supporting naive Bayes sweep",
                lambda ctx: {
                    "bayes": self.run_supporting_sweep(
                        "bayes",
                        phase2_thresholds,
                        executor=executor,
                        cache=cache,
                    )
                },
            )

            def _select(ctx):
                with executor.timed_stage("selection"):
                    return {
                        "selection": self.select_threshold(
                            ctx["phase1"], ctx["phase2"]
                        )
                    }

            def _cluster(ctx):
                with executor.timed_stage("clustering"):
                    return {
                        "clustering": self.run_phase3(
                            ctx["selection"].selected_threshold, n_clusters
                        )
                    }

            pipeline.register(
                CrispDmStage.EVALUATION,
                "threshold selection (MCPV plateau rule)",
                _select,
            )
            pipeline.register(
                CrispDmStage.EVALUATION,
                "phase 3 clustering at the selected threshold",
                _cluster,
            )
            context = pipeline.run()
            executor.attach_cache_stats(cache)
            timings = executor.timings
        return StudyReport(
            phase1=context["phase1"],
            phase2=context["phase2"],
            bayes=context["bayes"],
            selection=context["selection"],
            clustering=context["clustering"],
            pipeline_log=pipeline.describe(),
            timings=timings,
        )
