"""Phase 3: cluster crash-count range analysis (Figure 4).

Clusters are formed on *road attributes only*; the analysis then asks
whether each cluster's crash counts fall in a narrow band ("low, mid or
high") — the paper's evidence that crash counts are attribute-driven
and that a non-crash-prone population exists.  The supporting one-way
ANOVA on cluster means is run as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import DataTable
from repro.evaluation import AnovaResult, one_way_anova
from repro.exceptions import EvaluationError
from repro.mining.kmeans import KMeans

__all__ = [
    "ClusterCrashProfile",
    "ClusteringAnalysis",
    "analyse_clusters",
    "run_phase3_clustering",
]

#: Paper: "six very low-crash clusters with their inter-quartile ranges
#: within the four crash count range or lower".
LOW_CRASH_IQR_LIMIT = 4.0
#: Paper: "an additional seven clusters have a high proportion crash
#: counts below 10 crashes".
MOSTLY_LOW_LIMIT = 10.0


@dataclass(frozen=True)
class ClusterCrashProfile:
    """Crash-count distribution of one cluster (one Figure 4 box)."""

    cluster_id: int
    n_instances: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def is_very_low_crash(self) -> bool:
        """IQR entirely within the 0–4 crash range."""
        return self.q3 <= LOW_CRASH_IQR_LIMIT

    @property
    def is_mostly_below_ten(self) -> bool:
        """Q3 under 10 but not a very-low cluster."""
        return not self.is_very_low_crash and self.q3 < MOSTLY_LOW_LIMIT

    @property
    def band(self) -> str:
        """'low' / 'medium' / 'high' by median count."""
        if self.median <= LOW_CRASH_IQR_LIMIT:
            return "low"
        if self.median < 2 * MOSTLY_LOW_LIMIT:
            return "medium"
        return "high"


@dataclass
class ClusteringAnalysis:
    """Full phase-3 result."""

    profiles: list[ClusterCrashProfile]
    anova: AnovaResult
    assignment: np.ndarray
    n_clusters: int

    @property
    def n_very_low_crash_clusters(self) -> int:
        return sum(1 for p in self.profiles if p.is_very_low_crash)

    @property
    def n_mostly_below_ten_clusters(self) -> int:
        return sum(1 for p in self.profiles if p.is_mostly_below_ten)

    def band_counts(self) -> dict[str, int]:
        counts = {"low": 0, "medium": 0, "high": 0}
        for profile in self.profiles:
            counts[profile.band] += 1
        return counts

    def supports_non_crash_prone_roads(self, minimum_clusters: int = 3) -> bool:
        """The paper's conclusion test: several amply-packed very-low
        clusters and an ANOVA that rejects equal means."""
        ample = [
            p
            for p in self.profiles
            if p.is_very_low_crash and p.n_instances >= 20
        ]
        return len(ample) >= minimum_clusters and self.anova.rejects_equal_means()


def analyse_clusters(
    counts: np.ndarray, assignment: np.ndarray
) -> ClusteringAnalysis:
    """Profile every cluster's crash-count range and run the ANOVA."""
    counts = np.asarray(counts, dtype=np.float64)
    assignment = np.asarray(assignment)
    if counts.shape != assignment.shape:
        raise EvaluationError(
            f"counts {counts.shape} and assignment {assignment.shape} differ"
        )
    cluster_ids = np.unique(assignment)
    if cluster_ids.size < 2:
        raise EvaluationError("need at least 2 non-empty clusters")
    profiles: list[ClusterCrashProfile] = []
    groups: list[np.ndarray] = []
    for cid in cluster_ids:
        member_counts = counts[assignment == cid]
        groups.append(member_counts)
        q1, median, q3 = np.percentile(member_counts, [25, 50, 75])
        profiles.append(
            ClusterCrashProfile(
                cluster_id=int(cid),
                n_instances=int(member_counts.size),
                minimum=float(member_counts.min()),
                q1=float(q1),
                median=float(median),
                q3=float(q3),
                maximum=float(member_counts.max()),
                mean=float(member_counts.mean()),
            )
        )
    anova = one_way_anova(groups)
    profiles.sort(key=lambda p: p.mean)
    return ClusteringAnalysis(
        profiles=profiles,
        anova=anova,
        assignment=assignment,
        n_clusters=int(cluster_ids.size),
    )


def run_phase3_clustering(
    crash_instances: DataTable,
    n_clusters: int = 32,
    seed: int = 0,
    count_column: str = "segment_crash_count",
    include: list[str] | None = None,
) -> ClusteringAnalysis:
    """The paper's phase 3 in one call.

    K-means (default 32 clusters) on the road attributes of the
    crash-only instances, then the crash-count range analysis.
    """
    model = KMeans(n_clusters=n_clusters, seed=seed)
    assignment = model.fit_predict(crash_instances, include=include)
    counts = crash_instances.numeric(count_column)
    return analyse_clusters(counts, assignment)
