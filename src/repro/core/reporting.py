"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints the same rows / series the paper reports;
these helpers keep that presentation in one place: fixed-width tables
(Tables 1, 3, 4, 5), labelled numeric series (Figures 2 and 3), count
histograms (Figure 1) and box-range charts (Figure 4).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_cell",
    "render_table",
    "render_series",
    "render_histogram",
    "render_box_ranges",
]


def format_cell(value: object, decimals: int = 3) -> str:
    """Uniform cell formatting: floats rounded, NaN shown as '-'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    decimals: int = 3,
) -> str:
    """Fixed-width text table with a rule under the header."""
    text_rows = [
        [format_cell(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[int, float]],
    x_label: str = "threshold",
    title: str | None = None,
    decimals: int = 3,
) -> str:
    """Tabulate named series over a shared integer x-axis."""
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name].get(x, float("nan")) for name in series]
        for x in xs
    ]
    return render_table(headers, rows, title=title, decimals=decimals)


def render_histogram(
    counts: Mapping[int, int],
    title: str | None = None,
    max_width: int = 50,
) -> str:
    """Horizontal bar chart of value → frequency."""
    lines = [title] if title else []
    if not counts:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(counts.values())
    for value in sorted(counts):
        frequency = counts[value]
        bar = "#" * max(
            1 if frequency else 0,
            int(round(frequency / peak * max_width)) if peak else 0,
        )
        lines.append(f"{value:>5}  {frequency:>7}  {bar}")
    return "\n".join(lines)


def render_box_ranges(
    boxes: Sequence[tuple[str, float, float, float, float, float]],
    title: str | None = None,
    axis_max: float | None = None,
    width: int = 60,
) -> str:
    """Text box-plot per row: (label, min, q1, median, q3, max).

    Mirrors Figure 4's per-cluster crash-count ranges.
    """
    lines = [title] if title else []
    if not boxes:
        lines.append("(empty)")
        return "\n".join(lines)
    top = axis_max if axis_max is not None else max(b[5] for b in boxes)
    top = max(top, 1e-9)

    def position(value: float) -> int:
        return min(width - 1, max(0, int(round(value / top * (width - 1)))))

    for label, low, q1, median, q3, high in boxes:
        chart = [" "] * width
        for i in range(position(low), position(high) + 1):
            chart[i] = "-"
        for i in range(position(q1), position(q3) + 1):
            chart[i] = "="
        chart[position(median)] = "O"
        lines.append(
            f"{label:>12} |{''.join(chart)}| "
            f"q1={q1:g} med={median:g} q3={q3:g} max={high:g}"
        )
    return "\n".join(lines)
