"""Wet/dry crash analysis (the study's stage-1 findings).

The paper builds on its preliminary stage [Emerson et al., WCEAM 2010]:
"Attributes such as skid resistance and texture depth were found to
have strong relationship with roads having crashes, and wet & dry roads
were found to have differing distributions of crash with respect to
skid resistance and traffic rates."

This module reproduces that stage on the synthetic crash instances:
distribution comparison of skid resistance (F60) between wet and dry
crashes, the wet-crash share across F60 bands, and the supporting
statistical tests (two-sample KS, χ² on the banded contingency table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.datatable import DataTable
from repro.exceptions import EvaluationError
from repro.mining.tree.splitting import chi_square_table

__all__ = ["WetDryResult", "wet_dry_analysis"]


@dataclass(frozen=True)
class WetDryResult:
    """Outcome of the wet/dry differentiation analysis."""

    n_wet: int
    n_dry: int
    wet_mean_f60: float
    dry_mean_f60: float
    ks_statistic: float
    ks_p_value: float
    band_edges: tuple[float, ...]
    wet_share_by_band: tuple[float, ...]
    chi2_statistic: float
    chi2_p_value: float

    @property
    def wet_share(self) -> float:
        return self.n_wet / max(self.n_wet + self.n_dry, 1)

    def distributions_differ(self, alpha: float = 0.01) -> bool:
        """The stage-1 finding: wet and dry crashes sit on roads with
        different friction distributions."""
        return self.ks_p_value < alpha and self.chi2_p_value < alpha

    def describe(self) -> str:
        lines = [
            f"wet crashes: {self.n_wet} ({100 * self.wet_share:.1f}%), "
            f"dry: {self.n_dry}",
            f"mean F60 at wet crashes {self.wet_mean_f60:.3f} vs dry "
            f"{self.dry_mean_f60:.3f}",
            f"KS test: D={self.ks_statistic:.3f}, p={self.ks_p_value:.3g}",
            f"banded chi-square: X2={self.chi2_statistic:.1f}, "
            f"p={self.chi2_p_value:.3g}",
            "wet share by F60 band (low -> high friction):",
        ]
        for low, high, share in zip(
            self.band_edges[:-1], self.band_edges[1:], self.wet_share_by_band
        ):
            lines.append(f"  F60 {low:.2f}-{high:.2f}: {100 * share:.1f}% wet")
        return "\n".join(lines)


def wet_dry_analysis(
    crash_instances: DataTable,
    f60_column: str = "skid_resistance_f60",
    condition_column: str = "surface_condition",
    n_bands: int = 5,
) -> WetDryResult:
    """Compare wet vs dry crashes with respect to skid resistance.

    ``crash_instances`` is one row per crash with the segment's F60 and
    the crash's surface condition ('wet' / 'dry').
    """
    condition = crash_instances.categorical(condition_column)
    if "wet" not in condition.labels or "dry" not in condition.labels:
        raise EvaluationError(
            f"{condition_column!r} must have 'wet' and 'dry' levels"
        )
    f60 = crash_instances.numeric(f60_column)
    wet_mask = condition.codes == condition.labels.index("wet")
    dry_mask = condition.codes == condition.labels.index("dry")
    present = ~np.isnan(f60)
    wet_f60 = f60[wet_mask & present]
    dry_f60 = f60[dry_mask & present]
    if wet_f60.size < 5 or dry_f60.size < 5:
        raise EvaluationError(
            "need at least 5 wet and 5 dry crashes with F60 readings"
        )
    ks = stats.ks_2samp(wet_f60, dry_f60)

    # Band F60 by equal-frequency edges over all crashes.
    all_f60 = f60[present]
    edges = np.quantile(all_f60, np.linspace(0, 1, n_bands + 1))
    edges[0] -= 1e-9
    edges[-1] += 1e-9
    bands = np.clip(
        np.searchsorted(edges, all_f60, side="right") - 1, 0, n_bands - 1
    )
    wet_flags = wet_mask[present]
    contingency = np.zeros((n_bands, 2))
    for band in range(n_bands):
        in_band = bands == band
        contingency[band, 0] = (wet_flags & in_band).sum()
        contingency[band, 1] = (~wet_flags & in_band).sum()
    chi2, chi2_p, _dof = chi_square_table(contingency)
    band_totals = contingency.sum(axis=1)
    wet_share_by_band = tuple(
        float(contingency[band, 0] / band_totals[band])
        if band_totals[band]
        else float("nan")
        for band in range(n_bands)
    )
    return WetDryResult(
        n_wet=int(wet_mask.sum()),
        n_dry=int(dry_mask.sum()),
        wet_mean_f60=float(wet_f60.mean()),
        dry_mean_f60=float(dry_f60.mean()),
        ks_statistic=float(ks.statistic),
        ks_p_value=float(ks.pvalue),
        band_edges=tuple(float(e) for e in edges),
        wet_share_by_band=wet_share_by_band,
        chi2_statistic=chi2,
        chi2_p_value=chi2_p,
    )
