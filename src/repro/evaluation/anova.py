"""One-way analysis of variance.

Phase 3 of the paper backs its cluster finding with an ANOVA: "the
resulting ANOVA p-value of 0 provided strong evidence to dismiss the
assumption of equality of the means".  The statistic is implemented
directly (and cross-checked against ``scipy.stats.f_oneway`` in the
test suite) so that the cluster-analysis module has no hidden model
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.exceptions import EvaluationError

__all__ = ["AnovaResult", "one_way_anova"]


@dataclass(frozen=True)
class AnovaResult:
    """F statistic, p-value and the decomposed sums of squares."""

    f_statistic: float
    p_value: float
    df_between: int
    df_within: int
    ss_between: float
    ss_within: float

    @property
    def eta_squared(self) -> float:
        """Effect size: share of variance explained by group membership."""
        total = self.ss_between + self.ss_within
        return float("nan") if total == 0 else self.ss_between / total

    def rejects_equal_means(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def one_way_anova(groups: Sequence[np.ndarray]) -> AnovaResult:
    """One-way fixed-effects ANOVA over ≥2 non-empty groups."""
    arrays = [np.asarray(g, dtype=np.float64) for g in groups]
    arrays = [a[~np.isnan(a)] for a in arrays]
    arrays = [a for a in arrays if a.size > 0]
    if len(arrays) < 2:
        raise EvaluationError(
            f"ANOVA needs at least 2 non-empty groups, got {len(arrays)}"
        )
    k = len(arrays)
    n = sum(a.size for a in arrays)
    if n <= k:
        raise EvaluationError(
            f"ANOVA needs more observations ({n}) than groups ({k})"
        )
    grand_mean = float(np.concatenate(arrays).mean())
    ss_between = float(
        sum(a.size * (a.mean() - grand_mean) ** 2 for a in arrays)
    )
    ss_within = float(sum(((a - a.mean()) ** 2).sum() for a in arrays))
    df_between = k - 1
    df_within = n - k
    if ss_within == 0.0:
        # All groups internally constant: either a perfect separation
        # (different means → F infinite, p = 0) or no variation at all.
        if ss_between == 0.0:
            f_value, p_value = 0.0, 1.0
        else:
            f_value, p_value = float("inf"), 0.0
    else:
        f_value = (ss_between / df_between) / (ss_within / df_within)
        p_value = float(stats.f.sf(f_value, df_between, df_within))
    return AnovaResult(
        f_statistic=float(f_value),
        p_value=float(p_value),
        df_between=df_between,
        df_within=df_within,
        ss_between=ss_between,
        ss_within=ss_within,
    )
