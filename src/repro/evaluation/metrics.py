"""Model assessment measures (Table 2 of the paper).

Each function mirrors one row of Table 2, including the paper's own
contribution:

* :func:`mcpv` — the **minimum class predictive value**,
  ``Min(PPV, NPV)``, the paper's answer to accuracy/misclassification
  being "not suitable with unbalanced datasets"; and
* :func:`kappa` — Cohen's Kappa, "the most useful tool", co-used with
  MCPV.

Degenerate denominators (e.g. a model that never predicts the positive
class) return ``nan`` rather than raising: the sweeps in
:mod:`repro.core.study` must keep running across extreme-imbalance
thresholds where individual measures legitimately have no value — which
is, itself, the paper's point about those measures.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.confusion import BinaryConfusion
from repro.exceptions import EvaluationError

__all__ = [
    "accuracy",
    "misclassification_rate",
    "sensitivity",
    "recall",
    "specificity",
    "positive_predictive_value",
    "negative_predictive_value",
    "precision",
    "mcpv",
    "kappa",
    "weighted_precision",
    "weighted_recall",
    "r_squared",
    "roc_auc",
]


def _ratio(numerator: float, denominator: float) -> float:
    return float("nan") if denominator == 0 else numerator / denominator


# -- Table 2, row by row ---------------------------------------------------

def accuracy(cm: BinaryConfusion) -> float:
    """(TP+TN)/(TP+FP+TN+FN) — "not suitable with unbalanced datasets"."""
    return (cm.tp + cm.tn) / cm.total


def misclassification_rate(cm: BinaryConfusion) -> float:
    """Share of instances misclassified (1 − accuracy)."""
    return (cm.fp + cm.fn) / cm.total


def sensitivity(cm: BinaryConfusion) -> float:
    """TP/(TP+FN): proportion of crash-prone roads classified as such."""
    return _ratio(cm.tp, cm.tp + cm.fn)


#: The paper lists "Sensitivity / Recall" as one measure.
recall = sensitivity


def specificity(cm: BinaryConfusion) -> float:
    """TN/(FP+TN): non-crash-prone roads with a negative test result."""
    return _ratio(cm.tn, cm.fp + cm.tn)


def positive_predictive_value(cm: BinaryConfusion) -> float:
    """TP/(TP+FP): instances with a positive result that carry the risk."""
    return _ratio(cm.tp, cm.tp + cm.fp)


#: PPV is precision of the positive class.
precision = positive_predictive_value


def negative_predictive_value(cm: BinaryConfusion) -> float:
    """TN/(TN+FN): negative-result instances that are truly negative."""
    return _ratio(cm.tn, cm.tn + cm.fn)


def mcpv(cm: BinaryConfusion) -> float:
    """Minimum class predictive value — the paper's assessment statistic.

    ``Min(PPV, NPV)``: "our assumption was that the lowest value of one
    of these values was the effective predictive value of the model."
    NaN if either predictive value is undefined (a class never
    predicted), which is precisely the extreme-imbalance failure the
    statistic is designed to expose.
    """
    ppv = positive_predictive_value(cm)
    npv = negative_predictive_value(cm)
    if np.isnan(ppv) or np.isnan(npv):
        return float("nan")
    return min(ppv, npv)


def kappa(cm: BinaryConfusion) -> float:
    """Cohen's Kappa exactly as formulated in Table 2.

    Io = (TP+TN)/n;  Ie = ((TN+FN)(TN+FP)+(TP+FP)(TP+FN))/n²;
    κ = (Io − Ie)/(1 − Ie).  κ = 0 when agreement equals chance and the
    denominator vanishes (all instances in one predicted class of a
    one-class problem).
    """
    n = cm.total
    observed = (cm.tp + cm.tn) / n
    expected = (
        (cm.tn + cm.fn) * (cm.tn + cm.fp) + (cm.tp + cm.fp) * (cm.tp + cm.fn)
    ) / (n * n)
    if expected == 1.0:
        return 0.0
    return (observed - expected) / (1.0 - expected)


def weighted_precision(cm: BinaryConfusion) -> float:
    """Class-weighted precision (WEKA's 'Weighted Avg. Precision',
    reported in Table 5 for the Bayesian models)."""
    ppv = positive_predictive_value(cm)
    npv = negative_predictive_value(cm)
    weights_pos = cm.actual_positives / cm.total
    weights_neg = cm.actual_negatives / cm.total
    ppv = 0.0 if np.isnan(ppv) else ppv
    npv = 0.0 if np.isnan(npv) else npv
    return weights_pos * ppv + weights_neg * npv


def weighted_recall(cm: BinaryConfusion) -> float:
    """Class-weighted recall (equals accuracy for binary problems)."""
    sens = sensitivity(cm)
    spec = specificity(cm)
    sens = 0.0 if np.isnan(sens) else sens
    spec = 0.0 if np.isnan(spec) else spec
    return (
        cm.actual_positives * sens + cm.actual_negatives * spec
    ) / cm.total


# -- interval-target and score-based measures ----------------------------------

def r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination 1 − SS(err)/SS(total).

    The regression-tree headline of Tables 3 and 4.  Returns NaN when
    the actuals are constant (SS(total) = 0) — another measure the
    paper flags as "misleading with highly unbalanced datasets".
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise EvaluationError(
            f"shape mismatch: actual {actual.shape}, predicted "
            f"{predicted.shape}"
        )
    if actual.size == 0:
        raise EvaluationError("cannot compute R² of empty arrays")
    ss_total = float(((actual - actual.mean()) ** 2).sum())
    if ss_total == 0.0:
        return float("nan")
    ss_err = float(((actual - predicted) ** 2).sum())
    return 1.0 - ss_err / ss_total


def roc_auc(actual: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann–Whitney) identity.

    Ties receive half credit.  NaN when either class is absent — with
    174 positives among 16,750 the paper warns AUC "can be misleading",
    but it is still computable; it is *undefined* only for one-class
    data.
    """
    actual = np.asarray(actual)
    scores = np.asarray(scores, dtype=np.float64)
    if actual.shape != scores.shape:
        raise EvaluationError(
            f"shape mismatch: actual {actual.shape}, scores {scores.shape}"
        )
    positives = int(np.count_nonzero(actual == 1))
    negatives = int(np.count_nonzero(actual == 0))
    if positives + negatives != actual.size:
        raise EvaluationError("actual must be 0/1 for ROC AUC")
    if positives == 0 or negatives == 0:
        return float("nan")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(actual.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied score runs.
    i = 0
    position = 1.0
    while i < sorted_scores.size:
        j = i
        while (
            j + 1 < sorted_scores.size
            and sorted_scores[j + 1] == sorted_scores[i]
        ):
            j += 1
        mean_rank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = mean_rank
        position += j - i + 1
        i = j + 1
    rank_sum = float(ranks[np.asarray(actual) == 1].sum())
    u = rank_sum - positives * (positives + 1) / 2.0
    return u / (positives * negatives)
