"""Class-imbalance handling.

The paper notes that the imbalance "can be addressed using
pre-processing methods that under-sample the majority class such that
classes have an equal or otherwise nominated class distribution.
However this was considered not necessary."  These samplers implement
that option so the ablation bench can quantify exactly what the
authors declined — and whether MCPV + Kappa indeed made it unnecessary.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import EvaluationError

__all__ = [
    "class_indices",
    "undersample_majority",
    "oversample_minority",
    "class_distribution",
]


def class_indices(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(majority_indices, minority_indices) of a 0/1 vector."""
    y = np.asarray(y)
    pos = np.flatnonzero(y == 1)
    neg = np.flatnonzero(y == 0)
    if pos.size == 0 or neg.size == 0:
        raise EvaluationError("both classes must be present to resample")
    return (neg, pos) if neg.size >= pos.size else (pos, neg)


def undersample_majority(
    table: DataTable,
    y: np.ndarray,
    rng: np.random.Generator,
    ratio: float = 1.0,
) -> tuple[DataTable, np.ndarray]:
    """Drop majority rows until majority ≈ ratio × minority.

    ``ratio=1`` gives the equal distribution the paper mentions; larger
    ratios give the "otherwise nominated" distributions.  Returns the
    resampled table and target, row-shuffled.
    """
    if ratio < 1.0:
        raise EvaluationError(f"ratio must be >= 1, got {ratio}")
    majority, minority = class_indices(y)
    keep_majority = min(majority.size, int(round(minority.size * ratio)))
    keep_majority = max(keep_majority, 1)
    chosen = rng.choice(majority, size=keep_majority, replace=False)
    idx = rng.permutation(np.concatenate([minority, chosen]))
    return table.take(idx), np.asarray(y)[idx]


def oversample_minority(
    table: DataTable,
    y: np.ndarray,
    rng: np.random.Generator,
    ratio: float = 1.0,
) -> tuple[DataTable, np.ndarray]:
    """Duplicate minority rows (with replacement) up to majority/ratio."""
    if ratio < 1.0:
        raise EvaluationError(f"ratio must be >= 1, got {ratio}")
    majority, minority = class_indices(y)
    target_minority = max(minority.size, int(round(majority.size / ratio)))
    extra = target_minority - minority.size
    sampled = (
        rng.choice(minority, size=extra, replace=True)
        if extra > 0
        else np.empty(0, dtype=np.int64)
    )
    idx = rng.permutation(np.concatenate([majority, minority, sampled]))
    return table.take(idx), np.asarray(y)[idx]


def class_distribution(y: np.ndarray) -> dict[int, int]:
    """{0: n_negative, 1: n_positive}."""
    y = np.asarray(y)
    return {
        0: int(np.count_nonzero(y == 0)),
        1: int(np.count_nonzero(y == 1)),
    }
