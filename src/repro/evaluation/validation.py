"""Train/validation and cross-validation protocols.

The paper deliberately used a **train/validation split** for the tree
models ("correlations between the training and validation plots ... are
good indicators of the raw model quality, an aspect that is obscured by
the use of high performance methods such as cross-validation, boosting,
bagging"), and **10-fold cross-validation** for the supporting models
(logistic regression, neural networks, naive Bayes).  Both protocols
live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import EvaluationError
from repro.mining.base import BinaryClassifier

__all__ = [
    "TrainValidSplit",
    "train_valid_split",
    "kfold_indices",
    "stratified_fold_codes",
    "stratified_kfold_indices",
    "cross_val_scores",
]


@dataclass(frozen=True)
class TrainValidSplit:
    """A train/validation partition of one table."""

    train: DataTable
    valid: DataTable

    @property
    def sizes(self) -> tuple[int, int]:
        return self.train.n_rows, self.valid.n_rows


def train_valid_split(
    table: DataTable,
    rng: np.random.Generator,
    train_fraction: float = 0.6,
    stratify_by: str | None = None,
) -> TrainValidSplit:
    """The paper's training/validation method (default 60/40)."""
    train, valid = table.split(train_fraction, rng, stratify_by=stratify_by)
    return TrainValidSplit(train=train, valid=valid)


def kfold_indices(
    n_rows: int, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffled k-fold partition of row indices."""
    if k < 2:
        raise EvaluationError(f"k must be >= 2, got {k}")
    if n_rows < k:
        raise EvaluationError(f"cannot make {k} folds from {n_rows} rows")
    perm = rng.permutation(n_rows)
    return [fold for fold in np.array_split(perm, k)]


def stratified_fold_codes(
    y: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised stratified fold assignment: fold id per row.

    One int64 array replaces the per-fold index lists — a fold's rows
    are ``np.flatnonzero(codes == fold_id)`` and a fold's train mask is
    ``codes != fold_id``, with no per-fold concatenation or sorting.
    The RNG call sequence (one permutation per class, in class-value
    order) is identical to :func:`stratified_kfold_indices`, so both
    APIs describe the same partition for the same generator state.
    """
    y = np.asarray(y)
    if k < 2:
        raise EvaluationError(f"k must be >= 2, got {k}")
    codes = np.empty(y.shape[0], dtype=np.int64)
    for value in np.unique(y):
        members = rng.permutation(np.flatnonzero(y == value))
        # np.array_split boundaries, computed directly: the first
        # (n % k) folds receive one extra member.
        base, extra = divmod(members.size, k)
        sizes = np.full(k, base, dtype=np.int64)
        sizes[:extra] += 1
        codes[members] = np.repeat(np.arange(k, dtype=np.int64), sizes)
    return codes


def stratified_kfold_indices(
    y: np.ndarray, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """k folds preserving the 0/1 class mix per fold.

    With 174 positives in 16,750 rows, unstratified folds can lose the
    minority class entirely; stratification keeps every fold assessable.
    """
    codes = stratified_fold_codes(y, k, rng)
    return [np.flatnonzero(codes == fold_id) for fold_id in range(k)]


def cross_val_scores(
    model_factory: Callable[[], BinaryClassifier],
    table: DataTable,
    target: str,
    y: np.ndarray,
    k: int,
    rng: np.random.Generator,
    include: list[str] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled out-of-fold scores from stratified k-fold CV.

    Returns ``(actual, scores)`` over all rows, where each row's score
    came from the fold model that did not train on it — the protocol
    behind the paper's Table 5.
    """
    y = np.asarray(y)
    if y.shape[0] != table.n_rows:
        raise EvaluationError(
            f"y has {y.shape[0]} entries for a table of {table.n_rows} rows"
        )
    scores = np.full(table.n_rows, np.nan)
    fold_codes = stratified_fold_codes(y, k, rng)
    for fold_id in range(k):
        mask = fold_codes == fold_id
        fold = np.flatnonzero(mask)
        train = table.filter(~mask)
        valid = table.filter(mask)
        model = model_factory()
        model.fit(train, target, include=include)
        scores[fold] = model.predict_proba(valid)
    if np.isnan(scores).any():
        raise EvaluationError("cross-validation left unscored rows")
    return y.copy(), scores
