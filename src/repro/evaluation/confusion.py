"""Binary confusion matrix.

Every Table 2 measure is a function of the four cells; keeping the
cells in one value object makes the metric definitions read exactly
like the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError

__all__ = ["BinaryConfusion"]


@dataclass(frozen=True)
class BinaryConfusion:
    """Counts of a binary classification outcome.

    ``tp``: actual positive, predicted positive; ``fp``: actual
    negative, predicted positive; ``tn``/``fn`` analogous.
    """

    tp: int
    fp: int
    tn: int
    fn: int

    def __post_init__(self) -> None:
        for name in ("tp", "fp", "tn", "fn"):
            if getattr(self, name) < 0:
                raise EvaluationError(f"confusion cell {name} is negative")
        if self.total == 0:
            raise EvaluationError("confusion matrix has no observations")

    @classmethod
    def from_predictions(
        cls, actual: np.ndarray, predicted: np.ndarray
    ) -> "BinaryConfusion":
        """Build from 0/1 arrays of equal length."""
        actual = np.asarray(actual)
        predicted = np.asarray(predicted)
        if actual.shape != predicted.shape:
            raise EvaluationError(
                f"actual {actual.shape} and predicted {predicted.shape} "
                "shapes differ"
            )
        for name, arr in (("actual", actual), ("predicted", predicted)):
            values = np.unique(arr)
            if not np.isin(values, (0, 1)).all():
                raise EvaluationError(
                    f"{name} must be 0/1, found values {values[:5]}"
                )
        a = actual.astype(bool)
        p = predicted.astype(bool)
        return cls(
            tp=int(np.count_nonzero(a & p)),
            fp=int(np.count_nonzero(~a & p)),
            tn=int(np.count_nonzero(~a & ~p)),
            fn=int(np.count_nonzero(a & ~p)),
        )

    @classmethod
    def from_scores(
        cls,
        actual: np.ndarray,
        scores: np.ndarray,
        threshold: float = 0.5,
    ) -> "BinaryConfusion":
        """Build by thresholding probability scores."""
        scores = np.asarray(scores, dtype=np.float64)
        return cls.from_predictions(actual, (scores >= threshold).astype(int))

    # -- marginals ---------------------------------------------------------
    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def actual_positives(self) -> int:
        return self.tp + self.fn

    @property
    def actual_negatives(self) -> int:
        return self.tn + self.fp

    @property
    def predicted_positives(self) -> int:
        return self.tp + self.fp

    @property
    def predicted_negatives(self) -> int:
        return self.tn + self.fn

    @property
    def imbalance_ratio(self) -> float:
        """majority / minority actual-class ratio (∞-safe)."""
        small = min(self.actual_positives, self.actual_negatives)
        large = max(self.actual_positives, self.actual_negatives)
        return float("inf") if small == 0 else large / small

    def as_table(self) -> np.ndarray:
        """2×2 array [[tp, fn], [fp, tn]] (rows = actual)."""
        return np.array([[self.tp, self.fn], [self.fp, self.tn]])

    def __str__(self) -> str:
        return (
            f"BinaryConfusion(tp={self.tp}, fp={self.fp}, "
            f"tn={self.tn}, fn={self.fn})"
        )
