"""Model assessment: Table 2 measures, MCPV, Kappa, ROC, validation
protocols, imbalance handling and ANOVA."""

from repro.evaluation.anova import AnovaResult, one_way_anova
from repro.evaluation.confusion import BinaryConfusion
from repro.evaluation.lift import LiftTable, lift_table
from repro.evaluation.imbalance import (
    class_distribution,
    class_indices,
    oversample_minority,
    undersample_majority,
)
from repro.evaluation.metrics import (
    accuracy,
    kappa,
    mcpv,
    misclassification_rate,
    negative_predictive_value,
    positive_predictive_value,
    precision,
    r_squared,
    recall,
    roc_auc,
    sensitivity,
    specificity,
    weighted_precision,
    weighted_recall,
)
from repro.evaluation.roc import RocCurve, roc_curve
from repro.evaluation.validation import (
    TrainValidSplit,
    cross_val_scores,
    kfold_indices,
    stratified_kfold_indices,
    train_valid_split,
)

__all__ = [
    "BinaryConfusion",
    "accuracy",
    "misclassification_rate",
    "sensitivity",
    "recall",
    "specificity",
    "positive_predictive_value",
    "negative_predictive_value",
    "precision",
    "mcpv",
    "kappa",
    "weighted_precision",
    "weighted_recall",
    "r_squared",
    "roc_auc",
    "RocCurve",
    "roc_curve",
    "TrainValidSplit",
    "train_valid_split",
    "kfold_indices",
    "stratified_kfold_indices",
    "cross_val_scores",
    "undersample_majority",
    "oversample_minority",
    "class_indices",
    "class_distribution",
    "AnovaResult",
    "one_way_anova",
    "LiftTable",
    "lift_table",
]
