"""ROC curve construction.

:func:`roc_curve` produces the (FPR, TPR) polyline across all score
thresholds; its trapezoidal area agrees with the rank-based
:func:`~repro.evaluation.metrics.roc_auc` (tested as an invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError

__all__ = ["RocCurve", "roc_curve"]


@dataclass(frozen=True)
class RocCurve:
    """ROC polyline with the thresholds that generated each vertex."""

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    def auc(self) -> float:
        """Area under the polyline (trapezoidal)."""
        return float(np.trapezoid(self.tpr, self.fpr))

    def best_youden(self) -> tuple[float, float]:
        """(threshold, J) maximising Youden's J = TPR − FPR."""
        j = self.tpr - self.fpr
        best = int(np.argmax(j))
        return float(self.thresholds[best]), float(j[best])


def roc_curve(actual: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC curve of scores against 0/1 actuals."""
    actual = np.asarray(actual)
    scores = np.asarray(scores, dtype=np.float64)
    if actual.shape != scores.shape:
        raise EvaluationError(
            f"shape mismatch: actual {actual.shape}, scores {scores.shape}"
        )
    positives = int(np.count_nonzero(actual == 1))
    negatives = int(np.count_nonzero(actual == 0))
    if positives == 0 or negatives == 0:
        raise EvaluationError("ROC curve requires both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_actual = np.asarray(actual)[order]
    sorted_scores = scores[order]
    tp_cum = np.cumsum(sorted_actual == 1)
    fp_cum = np.cumsum(sorted_actual == 0)
    # Keep only the last index of each tied-score run.
    distinct = np.flatnonzero(np.diff(sorted_scores, append=-np.inf))
    tpr = tp_cum[distinct] / positives
    fpr = fp_cum[distinct] / negatives
    thresholds = sorted_scores[distinct]
    return RocCurve(
        fpr=np.concatenate([[0.0], fpr]),
        tpr=np.concatenate([[0.0], tpr]),
        thresholds=np.concatenate([[np.inf], thresholds]),
    )
