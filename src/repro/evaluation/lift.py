"""Cumulative gains and lift analysis.

SAS Enterprise Miner's standard assessment output alongside the
classification statistics: sort instances by predicted score, then ask
what share of all positives is captured in the top p% (gains) and how
much better than random that is (lift).  Asset managers read this as
"if we can only treat 10 % of the network, how much of the crash-prone
stock does the model's top decile contain?"
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError

__all__ = ["LiftTable", "lift_table"]


@dataclass(frozen=True)
class LiftTable:
    """Per-decile cumulative gains and lift."""

    depth: np.ndarray
    """Cumulative population share per bin (e.g. 0.1 … 1.0)."""
    gains: np.ndarray
    """Cumulative share of positives captured at each depth."""
    lift: np.ndarray
    """gains / depth (1.0 = random targeting)."""
    positives_per_bin: np.ndarray
    n_positives: int
    n_total: int

    def gains_at(self, depth: float) -> float:
        """Interpolated cumulative gain at an arbitrary depth."""
        return float(
            np.interp(depth, np.concatenate([[0.0], self.depth]),
                      np.concatenate([[0.0], self.gains]))
        )

    def top_decile_lift(self) -> float:
        return float(self.lift[0])

    def rows(self) -> list[dict]:
        return [
            {
                "depth": float(d),
                "gains": float(g),
                "lift": float(l),
                "positives": int(p),
            }
            for d, g, l, p in zip(
                self.depth, self.gains, self.lift, self.positives_per_bin
            )
        ]


def lift_table(
    actual: np.ndarray, scores: np.ndarray, n_bins: int = 10
) -> LiftTable:
    """Cumulative gains/lift over score-ordered bins.

    Ties are broken stably by original order so the table is
    deterministic.
    """
    actual = np.asarray(actual)
    scores = np.asarray(scores, dtype=np.float64)
    if actual.shape != scores.shape:
        raise EvaluationError(
            f"shape mismatch: actual {actual.shape}, scores {scores.shape}"
        )
    if n_bins < 1 or n_bins > actual.size:
        raise EvaluationError(
            f"n_bins must be in [1, {actual.size}], got {n_bins}"
        )
    n_positives = int(np.count_nonzero(actual == 1))
    if n_positives == 0:
        raise EvaluationError("lift requires at least one positive")
    order = np.argsort(-scores, kind="stable")
    sorted_actual = actual[order]
    edges = np.linspace(0, actual.size, n_bins + 1).round().astype(int)
    positives_per_bin = np.array(
        [
            int((sorted_actual[lo:hi] == 1).sum())
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
    )
    cumulative = np.cumsum(positives_per_bin)
    depth = edges[1:] / actual.size
    gains = cumulative / n_positives
    with np.errstate(divide="ignore", invalid="ignore"):
        lift = np.where(depth > 0, gains / depth, 0.0)
    return LiftTable(
        depth=depth,
        gains=gains,
        lift=lift,
        positives_per_bin=positives_per_bin,
        n_positives=n_positives,
        n_total=int(actual.size),
    )
