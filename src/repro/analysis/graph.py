"""Whole-program symbol table and call graph (the v2 analyser core).

PR 4's rules see one file at a time; the concurrency rules (REP101+)
need to know *what calls what* across the project. This module builds
that view from the already-parsed :class:`FileContext` objects:

* a **symbol table** of module-qualified functions, methods and classes
  (``repro.serving.engine.ScoringEngine.score_rows``), including defs
  nested in functions (the HTTP handler class lives inside
  ``ScoringService._make_server``);
* **call edges** resolved alias-aware (``from x import f as g``),
  receiver-typed (``self.cache = LRUResultCache(...)`` makes
  ``self.cache.get(...)`` a method edge) and through ``self``/``cls``
  with project base classes;
* **bounded dynamic dispatch**: an attribute call whose receiver type
  is unknown binds to every project method of that name when there are
  at most :data:`DISPATCH_LIMIT` candidates; beyond that — or for
  computed callees — the call lands in an explicit **unresolved
  bucket** that ``repro-study lint --graph`` reports, never silently
  dropped.

The graph is deliberately conservative-but-honest: edges it cannot
justify are not invented, and calls it cannot classify are counted.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.rules import FileContext, _dotted, _walk_lexical

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectGraph",
    "build_graph",
    "module_name_for",
    "DISPATCH_LIMIT",
    "MODULE_NODE",
]

#: Maximum candidate set for a dynamic-dispatch attribute call; more
#: candidates than this means the edge is noise, so it goes to the
#: unresolved bucket instead.
DISPATCH_LIMIT = 8

#: Pseudo-function name for a module's top-level code.
MODULE_NODE = "<module>"

#: Attribute names so common on stdlib/numpy objects that binding them
#: to same-named project methods would drown the graph in false edges.
#: Receiver-typed resolution still sees through these; only the
#: last-resort dynamic fallback consults this set.
_COMMON_EXTERNAL_METHODS = frozenset({
    "accept", "acquire", "add", "all", "any", "append", "astype",
    "bind", "cancel", "clear", "close", "connect", "copy", "count",
    "cumsum", "decode", "dot", "encode", "endswith", "exists",
    "extend", "fileno", "fill", "findall", "flatten", "flush",
    "format", "get", "getheader", "getresponse", "group", "index",
    "insert", "is_dir", "is_file", "is_set", "items", "join", "keys",
    "listen", "lower", "lstrip", "match", "max", "mean", "min",
    "mkdir", "most_common", "move_to_end", "nonzero", "notify",
    "notify_all", "open", "partition", "pop", "popitem", "put",
    "read", "readline", "recv", "release", "remove", "replace",
    "reshape", "resolve", "reverse", "rglob", "round", "rsplit",
    "rstrip", "search", "send", "sendall", "set", "setdefault",
    "shutdown", "sort", "split", "start", "startswith", "std",
    "strip", "sub", "sum", "task_done", "tell", "title", "tobytes",
    "tolist", "update", "upper", "values", "wait", "wait_for",
    "write",
})


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Components up to and including the last ``src`` directory are
    stripped (``src/repro/serving/http.py`` → ``repro.serving.http``);
    paths without a ``src`` component use the file stem, which keeps
    single-file fixtures readable.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    names = [p[:-3] if p.endswith(".py") else p for p in parts]
    if "src" in parts[:-1]:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("src")
        names = names[idx + 1:]
    else:
        names = names[-1:]
    if len(names) > 1 and names[-1] == "__init__":
        names = names[:-1]
    return ".".join(n for n in names if n) or MODULE_NODE


@dataclass
class FunctionInfo:
    """One def (or a module's top-level pseudo-function) in the project."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.AST
    #: Owning class qualname when this is a method, else None.
    owner: str | None = None


@dataclass
class ClassInfo:
    """One class definition with resolved bases and typed attributes."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    #: method name → function qualname (own methods only; bases via MRO).
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.X = ClassName(...)`` in any method → attr name → class qualname.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, classified."""

    caller: str
    path: str
    line: int
    name: str
    #: direct | method | dynamic | external | unresolved
    kind: str
    targets: tuple[str, ...] = ()
    reason: str = ""


class ProjectGraph:
    """Symbol table + call graph over a set of parsed files."""

    def __init__(self) -> None:
        self.files: dict[str, FileContext] = {}
        self.modules: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.unresolved: list[CallSite] = []
        self.n_external_calls = 0
        #: def/module AST node → its FunctionInfo (identity keyed).
        self.function_by_node: dict[ast.AST, FunctionInfo] = {}
        #: function qualname → local variable name → class qualname.
        self.local_types: dict[str, dict[str, str]] = {}
        self._module_by_path: dict[str, str] = {}
        self._methods_by_name: dict[str, list[str]] = {}

    # -- symbol collection ---------------------------------------------------

    def _register_module(self, path: str) -> str:
        module = module_name_for(path)
        if module in self.modules and self.modules[module] != path:
            suffix = 2
            while f"{module}~{suffix}" in self.modules:
                suffix += 1
            module = f"{module}~{suffix}"
        self.modules[module] = path
        self._module_by_path[path] = module
        return module

    def module_of(self, path: str) -> str:
        return self._module_by_path[path]

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self.function_by_node[info.node] = info
        if info.owner is not None:
            self._methods_by_name.setdefault(info.name, []).append(
                info.qualname
            )

    @staticmethod
    def _child_statement_groups(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
        """Statement lists nested in a compound statement (if/try/with/...)."""
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    def _collect_symbols(self, path: str, ctx: FileContext) -> None:
        module = self._register_module(path)
        self._add_function(
            FunctionInfo(
                qualname=f"{module}.{MODULE_NODE}",
                name=MODULE_NODE,
                module=module,
                path=path,
                node=ctx.tree,
            )
        )

        def walk(
            stmts: list[ast.stmt],
            scope: tuple[str, ...],
            owner: ClassInfo | None,
        ) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = ".".join((module, *scope, stmt.name))
                    info = FunctionInfo(
                        qualname=qual,
                        name=stmt.name,
                        module=module,
                        path=path,
                        node=stmt,
                        owner=owner.qualname if owner else None,
                    )
                    self._add_function(info)
                    if owner is not None:
                        owner.methods.setdefault(stmt.name, qual)
                    walk(stmt.body, (*scope, stmt.name), None)
                elif isinstance(stmt, ast.ClassDef):
                    qual = ".".join((module, *scope, stmt.name))
                    cls = ClassInfo(
                        qualname=qual,
                        name=stmt.name,
                        module=module,
                        path=path,
                        node=stmt,
                        bases=tuple(
                            base
                            for base in (
                                ctx.resolve(b) for b in stmt.bases
                            )
                            if base is not None
                        ),
                    )
                    self.classes[qual] = cls
                    walk(stmt.body, (*scope, stmt.name), cls)
                else:
                    for block in self._child_statement_groups(stmt):
                        walk(block, scope, owner)

        walk(ctx.tree.body, (), None)

    # -- type and method lookup ----------------------------------------------

    def class_for_dotted(self, dotted: str, module: str) -> ClassInfo | None:
        """Resolve an alias-normalised dotted name to a project class."""
        found = self.classes.get(dotted)
        if found is not None:
            return found
        return self.classes.get(f"{module}.{dotted}")

    def lookup_method(
        self, cls: ClassInfo, name: str, _depth: int = 0
    ) -> str | None:
        """Method qualname on ``cls`` or its project bases (MRO-ish)."""
        if name in cls.methods:
            return cls.methods[name]
        if _depth > 8:
            return None
        for base in cls.bases:
            base_cls = self.class_for_dotted(base, cls.module)
            if base_cls is not None and base_cls is not cls:
                found = self.lookup_method(base_cls, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def _collect_attr_types(self) -> None:
        """``self.X = ClassName(...)`` anywhere in a method types attr X."""
        for info in self.functions.values():
            if info.owner is None or isinstance(info.node, ast.Module):
                continue
            cls = self.classes.get(info.owner)
            if cls is None:
                continue
            ctx = self.files[info.path]
            for stmt in _walk_lexical(info.node.body):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                dotted = ctx.resolve(stmt.value.func)
                if dotted is None:
                    continue
                target_cls = self.class_for_dotted(dotted, info.module)
                if target_cls is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(
                            target.attr, target_cls.qualname
                        )

    def _collect_local_types(self, info: FunctionInfo) -> dict[str, str]:
        """``x = ClassName(...)`` / ``x = self`` local type facts."""
        if isinstance(info.node, ast.Module):
            body = info.node.body
        else:
            body = info.node.body
        ctx = self.files[info.path]
        local: dict[str, str] = {}
        for stmt in _walk_lexical(body):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if (
                isinstance(value, ast.Name)
                and value.id == "self"
                and info.owner is not None
            ):
                local.setdefault(target.id, info.owner)
            elif isinstance(value, ast.Call):
                dotted = ctx.resolve(value.func)
                if dotted is None:
                    continue
                target_cls = self.class_for_dotted(dotted, info.module)
                if target_cls is not None:
                    local.setdefault(target.id, target_cls.qualname)
        return local

    # -- call resolution -----------------------------------------------------

    def _scope_prefixes(self, info: FunctionInfo) -> Iterator[str]:
        parts = info.qualname.split(".")
        module_depth = len(info.module.split("."))
        for cut in range(len(parts) - 1, module_depth - 1, -1):
            yield ".".join(parts[:cut])

    def _instantiation_target(self, cls: ClassInfo) -> tuple[str, ...]:
        init = self.lookup_method(cls, "__init__")
        return (init,) if init is not None else ()

    def _resolve_call(
        self,
        info: FunctionInfo,
        call: ast.Call,
        ctx: FileContext,
        local_types: dict[str, str],
    ) -> CallSite:
        func = call.func
        line = getattr(call, "lineno", 0)

        def site(kind: str, name: str, targets=(), reason: str = "") -> CallSite:
            return CallSite(
                caller=info.qualname,
                path=info.path,
                line=line,
                name=name,
                kind=kind,
                targets=tuple(targets),
                reason=reason,
            )

        if isinstance(func, ast.Name):
            raw = func.id
            for prefix in self._scope_prefixes(info):
                qual = f"{prefix}.{raw}"
                if qual in self.functions:
                    return site("direct", raw, (qual,))
                if qual in self.classes:
                    return site(
                        "direct",
                        raw,
                        self._instantiation_target(self.classes[qual]),
                    )
            dotted = ctx.resolve(func)
            if dotted is not None and dotted != raw:
                if dotted in self.functions:
                    return site("direct", dotted, (dotted,))
                cls = self.classes.get(dotted)
                if cls is not None:
                    return site(
                        "direct", dotted, self._instantiation_target(cls)
                    )
                return site("external", dotted)
            if hasattr(builtins, raw) or raw in ctx.aliases:
                return site("external", raw)
            return site(
                "unresolved",
                raw,
                reason="call through a local variable or closure",
            )

        if isinstance(func, ast.Attribute):
            attr = func.attr
            dotted = ctx.resolve(func)
            if dotted is not None:
                if dotted in self.functions:
                    return site("direct", dotted, (dotted,))
                cls = self.class_for_dotted(dotted, info.module)
                if cls is not None:
                    return site(
                        "direct", dotted, self._instantiation_target(cls)
                    )

            receiver_cls: ClassInfo | None = None
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and info.owner is not None:
                    receiver_cls = self.classes.get(info.owner)
                elif base.id in local_types:
                    receiver_cls = self.classes.get(local_types[base.id])
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and info.owner is not None
            ):
                owner_cls = self.classes.get(info.owner)
                if owner_cls is not None:
                    typed = self._attr_type(owner_cls, base.attr)
                    if typed is not None:
                        receiver_cls = self.classes.get(typed)

            if receiver_cls is not None:
                target = self.lookup_method(receiver_cls, attr)
                if target is not None:
                    return site("method", f"{receiver_cls.name}.{attr}", (target,))
                # Known project class without that method: inherited
                # from an external base (e.g. ThreadingHTTPServer).
                return site("external", dotted or f".{attr}")

            # A dotted callee rooted at an imported name that matched
            # no project symbol is an external library call
            # (subprocess.run, np.asarray) — it must not fall through
            # to dynamic dispatch against same-named project methods.
            raw = _dotted(func)
            if raw is not None:
                head = raw.split(".", 1)[0]
                if head != "self" and head in ctx.aliases:
                    return site("external", dotted or raw)

            if attr in _COMMON_EXTERNAL_METHODS:
                return site("external", dotted or f".{attr}")
            candidates = self._methods_by_name.get(attr, [])
            if not candidates:
                return site("external", dotted or f".{attr}")
            if len(candidates) <= DISPATCH_LIMIT:
                return site("dynamic", f".{attr}", tuple(sorted(candidates)))
            return site(
                "unresolved",
                f".{attr}",
                reason=(
                    f"dynamic dispatch: {len(candidates)} project methods "
                    f"named {attr!r} (limit {DISPATCH_LIMIT})"
                ),
            )

        return site("unresolved", "<computed>", reason="computed callee")

    def _attr_type(self, cls: ClassInfo, attr: str, _depth: int = 0) -> str | None:
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        if _depth > 8:
            return None
        for base in cls.bases:
            base_cls = self.class_for_dotted(base, cls.module)
            if base_cls is not None and base_cls is not cls:
                typed = self._attr_type(base_cls, attr, _depth + 1)
                if typed is not None:
                    return typed
        return None

    def _resolve_calls(self) -> None:
        for qual, info in self.functions.items():
            ctx = self.files[info.path]
            local_types = self._collect_local_types(info)
            self.local_types[qual] = local_types
            body = (
                info.node.body
                if isinstance(info.node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef))
                else []
            )
            sites: list[CallSite] = []
            for node in _walk_lexical(body):
                if isinstance(node, ast.Call):
                    resolved = self._resolve_call(info, node, ctx, local_types)
                    sites.append(resolved)
                    if resolved.kind == "unresolved":
                        self.unresolved.append(resolved)
                    elif resolved.kind == "external":
                        self.n_external_calls += 1
            self.calls[qual] = sites

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> Iterator[str]:
        for call in self.calls.get(qualname, []):
            yield from call.targets

    def to_dict(self) -> dict:
        """JSON-ready dump for ``repro-study lint --graph``."""
        edges = [
            [call.caller, target, call.kind]
            for calls in self.calls.values()
            for call in calls
            for target in call.targets
        ]
        return {
            "modules": dict(sorted(self.modules.items())),
            "functions": len(self.functions),
            "classes": len(self.classes),
            "call_edges": sorted(edges),
            "external_calls": self.n_external_calls,
            "unresolved_calls": [
                {
                    "caller": c.caller,
                    "name": c.name,
                    "path": c.path,
                    "line": c.line,
                    "reason": c.reason,
                }
                for c in sorted(
                    self.unresolved, key=lambda c: (c.path, c.line)
                )
            ],
        }


def build_graph(files: dict[str, FileContext]) -> ProjectGraph:
    """Build the project graph over parsed files (path → context)."""
    graph = ProjectGraph()
    graph.files = dict(files)
    for path in sorted(files):
        graph._collect_symbols(path, files[path])
    graph._collect_attr_types()
    graph._resolve_calls()
    return graph
