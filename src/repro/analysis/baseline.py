"""Committed baseline of grandfathered findings.

The baseline lets the analyzer land on a codebase with existing debt:
findings recorded in the baseline file are reported as *baselined*
(informational) rather than failing the run, while anything new fails.
Matching is by :meth:`Finding.fingerprint` — line-number free — with a
per-fingerprint count so two identical offences on one line of debt do
not grandfather a third.

The repo's policy (ISSUE 4) is an **empty** baseline at merge: the file
exists to support future grandfathering, not to hide current findings.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding
from repro.exceptions import AnalysisError

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """Fingerprint multiset with load/save round-tripping."""

    def __init__(self, counts: Counter | None = None):
        self.counts: Counter = Counter(counts or {})

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"baseline file {path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != _FORMAT_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            raise AnalysisError(
                f"baseline file {path} has an unrecognised layout; "
                f"regenerate it with --write-baseline"
            )
        counts: Counter = Counter()
        for entry in payload["findings"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise AnalysisError(
                    f"baseline file {path} contains a malformed entry: "
                    f"{entry!r}"
                )
            counts[entry["fingerprint"]] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str | Path, findings: list[Finding]) -> None:
        """Write ``findings`` as the new baseline (sorted, annotated)."""
        grouped: dict[str, dict] = {}
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if fp in grouped:
                grouped[fp]["count"] += 1
            else:
                grouped[fp] = {
                    "fingerprint": fp,
                    "count": 1,
                    "rule": finding.rule_id,
                    "path": finding.posix_path(),
                    "message": finding.message,
                }
        payload = {
            "format_version": _FORMAT_VERSION,
            "tool": "repro.analysis",
            "findings": list(grouped.values()),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        self.counts = Counter(
            {fp: entry["count"] for fp, entry in grouped.items()}
        )

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined) against the multiset."""
        remaining = Counter(self.counts)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if remaining[fp] > 0:
                remaining[fp] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.counts.values())
