"""``python -m repro.analysis`` — run the project linter."""

import sys

from repro.analysis.cli import main

sys.exit(main())
