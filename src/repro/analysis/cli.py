"""Command-line front-end: ``repro-study lint`` and ``python -m repro.analysis``.

Exit codes are CI-friendly:

* ``0`` — no reportable findings (baselined/suppressed don't count);
* ``1`` — at least one finding;
* ``2`` — usage or configuration error (unknown rule, bad baseline).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import render_json, render_text
from repro.exceptions import AnalysisError

__all__ = ["add_lint_arguments", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by both CLI entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), "
        "e.g. --select REP001,REP004",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME}; a missing file is empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments."""
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    try:
        baseline = Baseline.load(args.baseline)
        report = analyze_paths(args.paths, select=select, baseline=baseline)
        if args.write_baseline:
            baseline.save(args.baseline, report.findings + report.baselined)
            print(
                f"wrote {len(baseline)} finding(s) to {args.baseline}",
                file=sys.stderr,
            )
            return EXIT_CLEAN
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(render_json(report) if args.json else render_text(report))
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (rules REP001-REP005)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
