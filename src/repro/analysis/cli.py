"""Command-line front-end: ``repro-study lint`` and ``python -m repro.analysis``.

Exit codes are CI-friendly:

* ``0`` — no reportable findings (baselined/suppressed don't count);
* ``1`` — at least one finding;
* ``2`` — usage or configuration error (unknown rule, bad baseline).

``--changed [REF]`` restricts the run to files touched vs a git ref
(default ``HEAD``) for fast pre-commit loops, falling back to a full
lint outside a git checkout; ``--graph`` dumps the call graph + lock
model as JSON instead of linting; ``--sarif`` emits SARIF 2.1.0 for CI
annotation.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import analyze_paths, build_project, discover_files
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.exceptions import AnalysisError

__all__ = ["add_lint_arguments", "run_lint", "main", "changed_files"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by both CLI entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="emit a SARIF 2.1.0 log (for CI annotation)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the project call graph + lock model as JSON and exit "
        "(no lint run)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), "
        "e.g. --select REP001,REP101",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME}; a missing file is empty)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="lint only files changed vs a git ref (default REF: HEAD); "
        "falls back to a full lint outside a git checkout",
    )
    parser.add_argument(
        "--refs",
        default=None,
        metavar="DIR",
        help="comma-separated reference directories for REP104 literal "
        "coverage (default: the nearest 'tests' directory)",
    )


def changed_files(ref: str, paths: list[str]) -> list[Path] | None:
    """``.py`` files under ``paths`` changed vs ``ref`` (plus untracked).

    Returns ``None`` when git is unavailable or the paths are not in a
    checkout — the caller then falls back to a full lint.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    root = Path(toplevel.stdout.strip())
    touched = {
        (root / line).resolve()
        for line in (
            diff.stdout.splitlines() + untracked.stdout.splitlines()
        )
        if line.strip().endswith(".py")
    }
    in_scope = {p.resolve() for p in discover_files(list(paths))}
    return sorted(in_scope & touched)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments."""
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    refs = (
        [part.strip() for part in args.refs.split(",") if part.strip()]
        if getattr(args, "refs", None)
        else None
    )
    try:
        if getattr(args, "graph", False):
            _contexts, graph, model = build_project(args.paths)
            print(
                json.dumps(
                    {
                        "tool": "repro.analysis",
                        "graph": graph.to_dict(),
                        "locks": model.to_dict(),
                    },
                    indent=2,
                )
            )
            return EXIT_CLEAN

        paths: list = list(args.paths)
        if getattr(args, "changed", None) is not None:
            changed = changed_files(args.changed, paths)
            if changed is None:
                print(
                    "repro.analysis: not a git checkout; "
                    "running a full lint",
                    file=sys.stderr,
                )
            elif not changed:
                print(
                    f"repro.analysis: no .py files changed vs "
                    f"{args.changed}; nothing to lint",
                    file=sys.stderr,
                )
                return EXIT_CLEAN
            else:
                paths = changed

        baseline = Baseline.load(args.baseline)
        report = analyze_paths(
            paths, select=select, baseline=baseline, refs=refs
        )
        if args.write_baseline:
            baseline.save(args.baseline, report.findings + report.baselined)
            print(
                f"wrote {len(baseline)} finding(s) to {args.baseline}",
                file=sys.stderr,
            )
            return EXIT_CLEAN
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if getattr(args, "sarif", False):
        print(render_sarif(report))
    else:
        print(render_json(report) if args.json else render_text(report))
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-specific static analysis "
            "(file rules REP001-REP005, whole-program rules REP101-REP104)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
