"""The project-specific rule set (REP001–REP005).

Every rule here guards an invariant some other part of the repo *tests
dynamically* but nothing previously enforced statically:

* **REP001 determinism** — the sweep engine's bit-identical parity for
  any ``n_jobs`` (PR 1) holds only because every random draw flows
  from an explicitly seeded ``np.random.Generator``.  Unseeded
  ``default_rng()`` or module-level ``np.random.*`` / stdlib
  ``random.*`` calls would silently break it.
* **REP002 lock hygiene** — the serving layer synchronises five locks
  (engine queue/bulk, HTTP engines map, metrics, kernel build).  Locks
  must be held via ``with`` (exception-safe release), and bodies that
  hold a lock must not block on I/O, sleeps or subprocesses.
* **REP003 numeric safety** — MCPV/Kappa/R² code compares *stored*
  values against exactly-representable integral sentinels (``0.0``,
  ``1.0``), which is allowed; ``==`` / ``!=`` against computed floats
  (means, stds, divisions, non-integral literals) is not.
* **REP004 exception hygiene** — no bare/silently-swallowing broad
  excepts; deliberate raises use the :mod:`repro.exceptions`
  hierarchy, never raw ``ValueError`` / ``RuntimeError`` and friends
  (``TypeError`` / ``NotImplementedError`` stay builtin: they mark
  caller programming errors, which the hierarchy's docstring
  explicitly lets propagate).
* **REP005 resource hygiene** — ``open()`` / sockets / ``ctypes.CDLL``
  handles are bound in ``with`` blocks; anything held longer (the
  kernel's process-lifetime ``.so`` cache) must argue its case in a
  pragma.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator

from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "ProjectRule",
    "FileContext",
    "RULES",
    "PROJECT_RULES",
    "ENGINE_RULE_ID",
    "rule_catalog",
    "blocking_call_name",
]

#: Rule id used for engine-level findings (parse errors, bad pragmas).
ENGINE_RULE_ID = "REP000"


class FileContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.aliases = _import_aliases(tree)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def snippet(self, node: ast.AST) -> str:
        return self.snippet_line(getattr(node, "lineno", 0))

    def snippet_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            snippet=self.snippet(node),
        )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with import aliases normalised.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        names that do not start from an imported module resolve to
        their literal dotted form (or ``None`` for non-name bases).
        """
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return dotted

    def parent(self, node: ast.AST) -> ast.AST | None:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents.get(node)


class Rule:
    """A registered rule: id, description, and a check callable."""

    def __init__(
        self,
        rule_id: str,
        name: str,
        description: str,
        check: Callable[[FileContext], Iterator[Finding]],
    ):
        self.rule_id = rule_id
        self.name = name
        self.description = description
        self._check = check

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return self._check(ctx)


class ProjectRule:
    """A whole-program rule: checked once against the project graph.

    ``check`` receives a :class:`~repro.analysis.concurrency.ProjectContext`
    (call graph + lock model + reference roots) rather than one file.
    """

    def __init__(self, rule_id: str, name: str, description: str, check):
        self.rule_id = rule_id
        self.name = name
        self.description = description
        self._check = check

    def check(self, project) -> Iterator[Finding]:
        return self._check(project)


RULES: dict[str, Rule] = {}

#: Whole-program rules (REP101+); populated by repro.analysis.concurrency.
PROJECT_RULES: dict[str, ProjectRule] = {}


def _register(rule_id: str, name: str, description: str):
    def wrap(fn: Callable[[FileContext], Iterator[Finding]]):
        RULES[rule_id] = Rule(rule_id, name, description, fn)
        return fn

    return wrap


def rule_catalog() -> dict[str, str]:
    """rule id → one-line description (for ``--json`` output and docs)."""
    # Importing here (not at module top) avoids a cycle: concurrency
    # needs FileContext from this module, while this catalog must list
    # the project rules concurrency registers.
    from repro.analysis import concurrency  # noqa: F401

    catalog = {rule_id: RULES[rule_id].name for rule_id in sorted(RULES)}
    for rule_id in sorted(PROJECT_RULES):
        catalog[rule_id] = PROJECT_RULES[rule_id].name
    return catalog


# -- shared AST helpers ------------------------------------------------------

def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _walk_lexical(body: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# -- REP001: determinism -----------------------------------------------------

#: Seedable/structural attributes of ``numpy.random`` that do not touch
#: the legacy global state.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@_register(
    "REP001",
    "determinism: RNG must be an explicitly seeded Generator",
    "No unseeded np.random.default_rng(), no module-level np.random.* "
    "or stdlib random.* calls — randomness must thread through a seeded "
    "np.random.Generator, the invariant the n_jobs parity tests rely on.",
)
def _check_determinism(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve(node.func)
        if name is None:
            continue
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    "REP001",
                    "unseeded np.random.default_rng() draws entropy from "
                    "the OS; pass an explicit seed (or accept a Generator "
                    "parameter) so runs are reproducible",
                )
        elif name.startswith("numpy.random."):
            attr = name.split(".", 2)[2]
            if attr not in _NP_RANDOM_OK:
                yield ctx.finding(
                    node,
                    "REP001",
                    f"np.random.{attr}() uses numpy's hidden global RNG "
                    "state; use a seeded np.random.Generator instead",
                )
        elif name.startswith("random.") and ctx.aliases.get("random") == "random":
            yield ctx.finding(
                node,
                "REP001",
                f"stdlib {name}() uses process-global RNG state; use a "
                "seeded np.random.Generator instead",
            )


# -- REP002: lock hygiene ----------------------------------------------------

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

_LOCKISH_NAMES = {"lock", "rlock", "mutex", "cond", "condition"}
_LOCKISH_SUFFIXES = ("_lock", "_rlock", "_mutex", "_cond", "_condition")

_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "socket.socket",
    "socket.create_connection",
    "urllib.request.urlopen",
}

_BLOCKING_PREFIXES = ("subprocess.", "requests.", "shutil.")

_BLOCKING_METHODS = {"recv", "recv_into", "sendall", "accept", "connect"}


def _lock_names(ctx: FileContext) -> set[str]:
    names = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if ctx.resolve(value.func) in _LOCK_FACTORIES:
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                dotted = _dotted(target)
                if dotted is not None:
                    names.add(dotted)
    return names


def _looks_like_lock(dotted: str | None, known: set[str]) -> bool:
    if dotted is None:
        return False
    if dotted in known:
        return True
    tail = dotted.rsplit(".", 1)[-1].lower()
    return tail in _LOCKISH_NAMES or tail.endswith(_LOCKISH_SUFFIXES)


def blocking_call_name(ctx: FileContext, call: ast.Call) -> str | None:
    """Display name of ``call`` when it blocks (sleep/I/O/subprocess), else None.

    Shared by REP002 (lexical: blocking directly inside a ``with lock:``
    body) and REP102 (interprocedural: blocking *reached* from one).
    """
    name = ctx.resolve(call.func)
    if name in _BLOCKING_CALLS:
        return name
    if name is not None and name.startswith(_BLOCKING_PREFIXES):
        return name
    if isinstance(call.func, ast.Attribute) and call.func.attr in _BLOCKING_METHODS:
        return name or f".{call.func.attr}"
    return None


@_register(
    "REP002",
    "lock hygiene: with-only locks, no blocking calls while held",
    "threading locks are acquired only via 'with' (exception-safe "
    "release), and lock-holding bodies never block on I/O, sleeps or "
    "subprocesses — guards the serving engine's five locks.",
)
def _check_lock_hygiene(ctx: FileContext) -> Iterator[Finding]:
    known = _lock_names(ctx)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("acquire", "release") and _looks_like_lock(
                _dotted(node.func.value), known
            ):
                yield ctx.finding(
                    node,
                    "REP002",
                    f"bare .{node.func.attr}() on a lock; hold locks with "
                    "'with <lock>:' so errors cannot leak a held lock",
                )
        if isinstance(node, ast.With):
            held = [
                _dotted(item.context_expr)
                for item in node.items
                if _looks_like_lock(_dotted(item.context_expr), known)
            ]
            if not held:
                continue
            for inner in _walk_lexical(node.body):
                if not isinstance(inner, ast.Call):
                    continue
                label = blocking_call_name(ctx, inner)
                if label is not None:
                    yield ctx.finding(
                        inner,
                        "REP002",
                        f"blocking call {label.lstrip('.')}() inside "
                        f"'with {held[0]}:' body; move the slow work "
                        "outside the lock",
                    )


# -- REP003: numeric safety --------------------------------------------------

_FLOAT_PRODUCERS = {
    "mean",
    "std",
    "var",
    "average",
    "median",
    "percentile",
    "quantile",
    "norm",
    "dot",
    "prod",
    "sum",
}

_MATH_FLOAT = {
    "sqrt", "log", "log2", "log10", "log1p", "exp", "expm1", "sin",
    "cos", "tan", "atan2", "hypot", "pow", "fsum", "dist",
}


def _is_nan_literal(node: ast.AST, ctx: FileContext) -> bool:
    return (
        isinstance(node, ast.Call)
        and ctx.resolve(node.func) == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.strip().lower() in ("nan", "-nan")
    )


def _is_computed_float(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, ast.Constant):
        value = node.value
        return isinstance(value, float) and not value.is_integer()
    if isinstance(node, ast.UnaryOp):
        return _is_computed_float(node.operand, ctx)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _FLOAT_PRODUCERS
        ):
            return True
        name = ctx.resolve(node.func)
        return name is not None and (
            name.startswith("math.") and name.split(".")[1] in _MATH_FLOAT
        )
    if isinstance(node, ast.BinOp):
        if any(
            isinstance(op_node, ast.BinOp)
            and isinstance(op_node.op, (ast.Div, ast.Pow))
            for op_node in ast.walk(node)
        ):
            return True
        return any(
            _is_computed_float(part, ctx)
            for part in (node.left, node.right)
        )
    return False


@_register(
    "REP003",
    "numeric safety: no equality on computed floats",
    "== / != against computed floats (means, stds, divisions, "
    "non-integral literals) is flagged; comparing stored values to "
    "exactly-representable integral sentinels (0.0, 1.0) is the "
    "allowlisted pattern — protects the MCPV/Kappa/R² code.",
)
def _check_numeric_safety(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_is_nan_literal(o, ctx) for o in operands):
            yield ctx.finding(
                node,
                "REP003",
                "comparison with float('nan') is always False; use "
                "math.isnan()/np.isnan()",
            )
            continue
        if any(_is_computed_float(o, ctx) for o in operands):
            yield ctx.finding(
                node,
                "REP003",
                "float equality on a computed value; use "
                "math.isclose()/np.isclose(), or bind the value and "
                "compare against an exact integral sentinel",
            )


# -- REP004: exception hygiene -----------------------------------------------

_BROAD_EXCEPTS = {"Exception", "BaseException"}

#: Builtins whose deliberate raising should go through repro.exceptions.
#: TypeError / NotImplementedError / AssertionError stay builtin: they
#: mark caller programming errors, which the hierarchy lets propagate.
_DISALLOWED_RAISES = {
    "Exception",
    "BaseException",
    "ValueError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OSError",
    "IOError",
    "AttributeError",
    "NameError",
    "StopIteration",
}


def _handler_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the body neither re-raises nor touches the exception."""
    for node in _walk_lexical(handler.body):
        if isinstance(node, ast.Raise):
            return False
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and node.id == handler.name
        ):
            return False
    return True


@_register(
    "REP004",
    "exception hygiene: no silent broad excepts, raise repro types",
    "Bare excepts are forbidden; except Exception must re-raise or use "
    "the caught exception; deliberate raises use the repro.exceptions "
    "hierarchy rather than raw builtins.",
)
def _check_exception_hygiene(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield ctx.finding(
                    node,
                    "REP004",
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                )
                continue
            caught = node.type
            types = (
                caught.elts if isinstance(caught, ast.Tuple) else [caught]
            )
            broad = any(
                isinstance(t, ast.Name) and t.id in _BROAD_EXCEPTS
                for t in types
            )
            if broad and _handler_is_silent(node):
                yield ctx.finding(
                    node,
                    "REP004",
                    "broad 'except Exception' swallows the failure "
                    "silently; narrow the type, re-raise, or surface/log "
                    "the caught exception",
                )
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name_node = exc.func if isinstance(exc, ast.Call) else exc
            if (
                isinstance(name_node, ast.Name)
                and name_node.id in _DISALLOWED_RAISES
                and name_node.id not in ctx.aliases
            ):
                yield ctx.finding(
                    node,
                    "REP004",
                    f"raise {name_node.id} bypasses the repro.exceptions "
                    "hierarchy; raise a ReproError subclass (multiply "
                    "inheriting the builtin if callers catch it)",
                )


# -- REP005: resource hygiene ------------------------------------------------

_TRACKED_RESOURCES = {
    "open": "file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "ctypes.CDLL": "shared-object handle",
    "tempfile.NamedTemporaryFile": "temporary file",
    "tempfile.TemporaryFile": "temporary file",
    "tempfile.TemporaryDirectory": "temporary directory",
}

_WRAPPERS = {"contextlib.closing", "closing"}


def _is_with_context(ctx: FileContext, node: ast.Call) -> bool:
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call):
        wrapper = ctx.resolve(parent.func)
        if wrapper in _WRAPPERS:
            parent = ctx.parent(parent)
    return isinstance(parent, ast.withitem)


@_register(
    "REP005",
    "resource hygiene: handles bound in 'with' blocks",
    "open()/socket/ctypes.CDLL acquisitions must be 'with' context "
    "expressions (directly or via contextlib.closing); anything held "
    "longer needs a justified pragma — guards the kernel's .so cache.",
)
def _check_resource_hygiene(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve(node.func)
        kind = _TRACKED_RESOURCES.get(name or "")
        if kind is None:
            continue
        if not _is_with_context(ctx, node):
            yield ctx.finding(
                node,
                "REP005",
                f"{name}() acquires a {kind} outside a 'with' block; "
                "bind it in 'with' or pair it with an explicit "
                "close/finalizer and a justified pragma",
            )
