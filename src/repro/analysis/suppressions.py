"""Inline suppression pragmas: ``# repro: ignore[REPxxx] -- why``.

A pragma on a line silences the named rules *for that line only* and
must carry a justification after ``--``; an unjustified or unused
pragma is itself a finding (rule ``REP000``), so suppressions stay
honest — every one in the tree points at a real, argued-for exception.

Comments are located with :mod:`tokenize`, never by substring search,
so pragma-shaped text inside string literals (for instance the regular
expression below, when this file lints itself) is not mistaken for a
suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "scan_suppressions", "PRAGMA_PATTERN"]

#: Accepts the single-rule form and multi-rule / justified forms such
#: as ignoring "REP002, REP005" with a reason after the double dash.
PRAGMA_PATTERN = re.compile(
    r"#\s*repro:\s*ignore"
    r"(?:\[(?P<rules>[^\]]*)\])?"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)

_RULE_ID = re.compile(r"^REP\d{3}$")


@dataclass
class Suppression:
    """One parsed pragma comment."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str
    #: Rule ids that actually silenced a finding (filled by the engine).
    used_for: set = field(default_factory=set)

    @property
    def justified(self) -> bool:
        return bool(self.justification)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids

    def problems(self) -> list[str]:
        """Engine-level complaints about the pragma itself."""
        issues = []
        if not self.rule_ids:
            issues.append(
                "suppression must name the rule(s) it silences, e.g. "
                "'# repro: ignore[REP001] -- why'"
            )
        for rule_id in self.rule_ids:
            if not _RULE_ID.match(rule_id):
                issues.append(f"malformed rule id {rule_id!r} in suppression")
        if not self.justified:
            issues.append(
                "suppression requires a justification after '--'"
            )
        return issues


def scan_suppressions(source: str) -> dict[int, Suppression]:
    """line number → parsed pragma, for every pragma comment in ``source``.

    Sources that fail to tokenise yield no suppressions; the parse
    error itself is reported by the engine, not here.
    """
    pragmas: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_PATTERN.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip()
            for part in (match.group("rules") or "").split(",")
            if part.strip()
        )
        pragmas[token.start[0]] = Suppression(
            line=token.start[0],
            rule_ids=rules,
            justification=(match.group("why") or "").strip(),
        )
    return pragmas
