"""Text and JSON renderings of a :class:`~repro.analysis.engine.LintReport`.

The text reporter is for humans at a terminal; the JSON reporter is the
machine surface (CI annotations, dashboards) with a versioned schema:

.. code-block:: json

    {
      "format_version": 1,
      "tool": "repro.analysis",
      "clean": false,
      "checked_files": 42,
      "rules": {"REP001": "determinism: ..."},
      "findings": [
        {"path": "...", "line": 1, "col": 1, "rule": "REP001",
         "message": "...", "snippet": "...", "fingerprint": "..."}
      ],
      "summary": {"total": 1, "by_rule": {"REP001": 1},
                  "baselined": 0, "suppressed": 3}
    }
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.rules import rule_catalog

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "JSON_FORMAT_VERSION",
    "SARIF_VERSION",
]

JSON_FORMAT_VERSION = 1

SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """Human-readable report: findings, then a one-line verdict."""
    blocks = [finding.render() for finding in report.findings]
    tail = (
        f"checked {len(report.checked_files)} file(s): "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.n_suppressed} suppressed"
    )
    if report.findings:
        by_rule = ", ".join(
            f"{rule_id}={count}"
            for rule_id, count in report.counts_by_rule().items()
        )
        tail += f" [{by_rule}]"
    blocks.append(tail)
    return "\n".join(blocks)


def render_json(report: LintReport) -> str:
    """Machine-readable report (schema documented in the module docstring)."""
    payload = {
        "format_version": JSON_FORMAT_VERSION,
        "tool": "repro.analysis",
        "clean": report.clean,
        "checked_files": len(report.checked_files),
        "rules": rule_catalog(),
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "summary": {
            "total": len(report.findings),
            "by_rule": report.counts_by_rule(),
            "baselined": len(report.baselined),
            "suppressed": report.n_suppressed,
        },
    }
    return json.dumps(payload, indent=2)


def _sarif_result(finding, level: str) -> dict:
    return {
        "ruleId": finding.rule_id,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.posix_path()},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproFingerprint/v1": finding.fingerprint()
        },
    }


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for CI annotation (one run, one driver).

    Reportable findings are ``error`` results; baselined ones are
    ``note`` so code hosts show them without failing the check.
    """
    catalog = rule_catalog()
    sarif = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": name},
                            }
                            for rule_id, name in sorted(catalog.items())
                        ],
                    }
                },
                "results": [
                    *(
                        _sarif_result(f, "error")
                        for f in report.findings
                    ),
                    *(
                        _sarif_result(f, "note")
                        for f in report.baselined
                    ),
                ],
            }
        ],
    }
    return json.dumps(sarif, indent=2)
