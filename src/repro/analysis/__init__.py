"""repro.analysis — project-specific static analysis.

An AST-based lint engine with rules targeting this reproduction's real
hazards: determinism (REP001), lock hygiene (REP002), numeric safety
(REP003), exception hygiene (REP004) and resource hygiene (REP005).
Run it as ``repro-study lint [paths]`` or ``python -m repro.analysis``;
suppress a finding inline with ``# repro: ignore[REPxxx] -- why``.

Pure stdlib (``ast`` + ``tokenize``): importing this package pulls in
none of the numeric stack, so the lint CI job stays dependency-light.
"""

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import (
    LintReport,
    analyze_paths,
    analyze_source,
    discover_files,
)
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ENGINE_RULE_ID, RULES, rule_catalog
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "ENGINE_RULE_ID",
    "Finding",
    "LintReport",
    "RULES",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "discover_files",
    "render_json",
    "render_text",
    "rule_catalog",
    "scan_suppressions",
]
