"""repro.analysis — project-specific static analysis.

v2: a two-layer engine. File rules (REP001–REP005: determinism, lock/
numeric/exception/resource hygiene) run per-AST as before; whole-
program rules (REP101–REP104: lock-order cycles, transitive blocking
while locked, unsynchronised shared state, literal-registry drift) run
over a project call graph (:mod:`repro.analysis.graph`) and lock model
(:mod:`repro.analysis.locks`) built from the same parsed trees. A
runtime lock-order sanitizer (:mod:`repro.analysis.sanitizer`) cross-
validates the static model against observed acquisitions.

Run it as ``repro-study lint [paths]`` or ``python -m repro.analysis``;
suppress a finding inline with ``# repro: ignore[REPxxx] -- why``;
dump the call graph and lock model with ``--graph``; emit SARIF with
``--sarif``; lint only touched files with ``--changed [REF]``.

Pure stdlib (``ast`` + ``tokenize``): importing this package pulls in
none of the numeric stack, so the lint CI job stays dependency-light.
"""

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import (
    LintReport,
    analyze_paths,
    analyze_source,
    build_project,
    discover_files,
    discover_reference_roots,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.locks import LockModel, build_lock_model
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import (
    ENGINE_RULE_ID,
    PROJECT_RULES,
    RULES,
    rule_catalog,
)
from repro.analysis.sanitizer import (
    LockOrderMonitor,
    model_gaps,
    sanitize_locks,
)
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "ENGINE_RULE_ID",
    "Finding",
    "LintReport",
    "LockModel",
    "LockOrderMonitor",
    "ProjectGraph",
    "PROJECT_RULES",
    "RULES",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "build_graph",
    "build_lock_model",
    "build_project",
    "discover_files",
    "discover_reference_roots",
    "model_gaps",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalog",
    "sanitize_locks",
    "scan_suppressions",
]
