"""The lint engine: discovery, file rules, project rules, suppressions.

The v2 pipeline parses every file **once**, then runs two rule layers:

1. **file rules** (REP001–REP005) against each file's AST;
2. **project rules** (REP101–REP104) against the whole-program call
   graph and lock model built from the same parsed trees;

and reconciles the combined findings against three layers of policy:

* **suppressions** — ``# repro: ignore[REPxxx] -- why`` on the
  finding's line (or on the *last* line of a simple multi-line
  statement containing it) silences it; unjustified, malformed or
  *unused* pragmas are engine findings (``REP000``), so the
  suppression mechanism cannot rot into a mute button;
* **baseline** — findings fingerprint-matched against the committed
  baseline are demoted to informational;
* everything left is a reportable finding and fails the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.locks import LockModel, build_lock_model
from repro.analysis.rules import (
    ENGINE_RULE_ID,
    PROJECT_RULES,
    RULES,
    FileContext,
)
from repro.analysis.suppressions import scan_suppressions
from repro.exceptions import AnalysisError

__all__ = [
    "LintReport",
    "analyze_source",
    "analyze_paths",
    "discover_files",
    "discover_reference_roots",
    "build_project",
]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    checked_files: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _select_rules(select: list[str] | None) -> tuple[list, list]:
    """(file rules, project rules) for a ``--select`` list (None = all)."""
    # Registers REP101+ into PROJECT_RULES on first use.
    from repro.analysis import concurrency  # noqa: F401

    if select is None:
        return (
            [RULES[rule_id] for rule_id in sorted(RULES)],
            [PROJECT_RULES[rule_id] for rule_id in sorted(PROJECT_RULES)],
        )
    known = set(RULES) | set(PROJECT_RULES)
    unknown = [rule_id for rule_id in select if rule_id not in known]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}"
        )
    wanted = sorted(set(select))
    return (
        [RULES[rule_id] for rule_id in wanted if rule_id in RULES],
        [PROJECT_RULES[rule_id] for rule_id in wanted if rule_id in PROJECT_RULES],
    )


# -- suppression reconciliation ----------------------------------------------

#: Simple (non-compound) statements: a pragma on the *last* line of one
#: of these spanning several lines covers findings anywhere inside it.
#: Compound statements (def/if/with/try...) are deliberately excluded —
#: a pragma on a function's last line must not silence a def-line
#: finding three screens up.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Pass,
)


def _statement_span_ends(tree: ast.Module) -> dict[int, int]:
    """line → end line of the simple multi-line statement containing it."""
    spans: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STMTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        for line in range(node.lineno, end + 1):
            spans.setdefault(line, end)
    return spans


def _reconcile_suppressions(
    ctx: FileContext, findings: list[Finding]
) -> tuple[list[Finding], int]:
    """Apply pragmas to ``findings`` in one file; emit REP000 findings."""
    pragmas = scan_suppressions(ctx.source)
    spans = _statement_span_ends(ctx.tree) if pragmas else {}
    kept: list[Finding] = []
    n_suppressed = 0
    for finding in findings:
        pragma = pragmas.get(finding.line)
        if pragma is None:
            end = spans.get(finding.line)
            if end is not None and end != finding.line:
                pragma = pragmas.get(end)
        if pragma is not None and pragma.covers(finding.rule_id):
            pragma.used_for.add(finding.rule_id)
            n_suppressed += 1
        else:
            kept.append(finding)

    for pragma in pragmas.values():
        for problem in pragma.problems():
            kept.append(
                Finding(
                    path=ctx.path,
                    line=pragma.line,
                    col=1,
                    rule_id=ENGINE_RULE_ID,
                    message=problem,
                    snippet=ctx.snippet_line(pragma.line),
                )
            )
        if pragma.rule_ids and not pragma.used_for and pragma.justified:
            unused = ", ".join(pragma.rule_ids)
            kept.append(
                Finding(
                    path=ctx.path,
                    line=pragma.line,
                    col=1,
                    rule_id=ENGINE_RULE_ID,
                    message=(
                        f"unused suppression [{unused}]: no such finding "
                        "on this line; remove the stale pragma"
                    ),
                    snippet=ctx.snippet_line(pragma.line),
                )
            )
    return kept, n_suppressed


# -- core pipeline -----------------------------------------------------------


def _parse(path: str, source: str) -> tuple[FileContext | None, Finding | None]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 0),
            rule_id=ENGINE_RULE_ID,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").rstrip(),
        )
    return FileContext(path, source, tree), None


def _analyze_project(
    sources: dict[str, str],
    select: list[str] | None,
    refs: list[Path],
) -> tuple[list[Finding], int]:
    from repro.analysis.concurrency import ProjectContext

    file_rules, project_rules = _select_rules(select)
    contexts: dict[str, FileContext] = {}
    raw: list[Finding] = []
    for path, source in sources.items():
        ctx, parse_error = _parse(path, source)
        if ctx is None:
            if parse_error is not None:
                raw.append(parse_error)
            continue
        contexts[path] = ctx
        for rule in file_rules:
            raw.extend(rule.check(ctx))

    if project_rules and contexts:
        graph = build_graph(contexts)
        model = build_lock_model(graph)
        project = ProjectContext(graph=graph, locks=model, refs=refs)
        for rule in project_rules:
            raw.extend(rule.check(project))

    by_path: dict[str, list[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)

    kept: list[Finding] = []
    n_suppressed = 0
    for path, ctx in contexts.items():
        file_findings, n = _reconcile_suppressions(
            ctx, by_path.pop(path, [])
        )
        kept.extend(file_findings)
        n_suppressed += n
    for leftovers in by_path.values():
        kept.extend(leftovers)
    return sorted(kept), n_suppressed


def analyze_source(
    source: str,
    path: str = "<memory>",
    select: list[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one source string → (findings, n_suppressed).

    The string is treated as a one-file project, so the whole-program
    rules (REP101+) run too. Suppressions are applied; the baseline is
    the caller's concern.
    """
    return _analyze_project({path: source}, select, refs=[])


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw_path in paths:
        path = Path(raw_path)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def discover_reference_roots(paths: list[str | Path]) -> list[Path]:
    """Default REP104 reference corpus: the nearest ``tests`` directory.

    For each input path, walk up through its ancestors looking for a
    sibling ``tests`` directory (``src`` → ``tests``; ``src/repro/obs``
    also finds the repo-root ``tests``). Paths outside a repo simply
    get no references.
    """
    roots: list[Path] = []
    seen: set[Path] = set()
    for raw_path in paths:
        start = Path(raw_path)
        if start.is_file():
            start = start.parent
        ancestors = [start, *start.resolve().parents][:10]
        for ancestor in ancestors:
            candidate = ancestor / "tests"
            if candidate.is_dir() and candidate not in seen:
                try:
                    if candidate.resolve() == Path(raw_path).resolve():
                        continue
                except OSError:
                    continue
                seen.add(candidate)
                roots.append(candidate)
                break
    return roots


def analyze_paths(
    paths: list[str | Path],
    select: list[str] | None = None,
    baseline: Baseline | None = None,
    refs: list[str | Path] | None = None,
) -> LintReport:
    """Lint files/directories and reconcile against ``baseline``.

    ``refs`` are the REP104 reference roots; ``None`` auto-discovers
    the nearest ``tests`` directory, ``[]`` disables references.
    """
    report = LintReport()
    sources: dict[str, str] = {}
    for file_path in discover_files(paths):
        sources[str(file_path)] = file_path.read_text(encoding="utf-8")
        report.checked_files.append(str(file_path))
    if refs is None:
        ref_roots = discover_reference_roots(paths)
    else:
        ref_roots = [Path(r) for r in refs]
    findings, n_suppressed = _analyze_project(sources, select, ref_roots)
    report.n_suppressed = n_suppressed
    if baseline is None:
        baseline = Baseline()
    report.findings, report.baselined = baseline.partition(sorted(findings))
    return report


def build_project(
    paths: list[str | Path],
) -> tuple[dict[str, FileContext], ProjectGraph, LockModel]:
    """Parse ``paths`` and build (contexts, call graph, lock model).

    Used by ``repro-study lint --graph`` and the runtime sanitizer's
    static-model cross-check; files that fail to parse are skipped
    (the lint run proper reports them).
    """
    contexts: dict[str, FileContext] = {}
    for file_path in discover_files(paths):
        source = file_path.read_text(encoding="utf-8")
        ctx, _parse_error = _parse(str(file_path), source)
        if ctx is not None:
            contexts[str(file_path)] = ctx
    graph = build_graph(contexts)
    model = build_lock_model(graph)
    return contexts, graph, model
