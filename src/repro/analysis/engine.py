"""The lint engine: file discovery, rule dispatch, suppressions, baseline.

Per file the engine parses the AST once, runs every selected rule over
it, then reconciles three layers of policy:

1. **suppressions** — ``# repro: ignore[REPxxx] -- why`` on the
   finding's line silences it; unjustified, malformed or *unused*
   pragmas are engine findings (``REP000``), so the suppression
   mechanism cannot rot into a mute button;
2. **baseline** — findings fingerprint-matched against the committed
   baseline are demoted to informational;
3. everything left is a reportable finding and fails the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import ENGINE_RULE_ID, RULES, FileContext
from repro.analysis.suppressions import scan_suppressions
from repro.exceptions import AnalysisError

__all__ = ["LintReport", "analyze_source", "analyze_paths", "discover_files"]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    checked_files: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _select_rules(select: list[str] | None) -> list:
    if select is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    unknown = [rule_id for rule_id in select if rule_id not in RULES]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(RULES))}"
        )
    return [RULES[rule_id] for rule_id in sorted(set(select))]


def analyze_source(
    source: str,
    path: str = "<memory>",
    select: list[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one source string → (findings, n_suppressed).

    Suppressions are applied; the baseline is the caller's concern.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                rule_id=ENGINE_RULE_ID,
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").rstrip(),
            )
        ], 0

    ctx = FileContext(path, source, tree)
    raw: list[Finding] = []
    for rule in _select_rules(select):
        raw.extend(rule.check(ctx))

    pragmas = scan_suppressions(source)
    kept: list[Finding] = []
    n_suppressed = 0
    for finding in raw:
        pragma = pragmas.get(finding.line)
        if pragma is not None and pragma.covers(finding.rule_id):
            pragma.used_for.add(finding.rule_id)
            n_suppressed += 1
        else:
            kept.append(finding)

    for pragma in pragmas.values():
        for problem in pragma.problems():
            kept.append(
                Finding(
                    path=path,
                    line=pragma.line,
                    col=1,
                    rule_id=ENGINE_RULE_ID,
                    message=problem,
                    snippet=ctx.snippet_line(pragma.line),
                )
            )
        if pragma.rule_ids and not pragma.used_for and pragma.justified:
            unused = ", ".join(pragma.rule_ids)
            kept.append(
                Finding(
                    path=path,
                    line=pragma.line,
                    col=1,
                    rule_id=ENGINE_RULE_ID,
                    message=(
                        f"unused suppression [{unused}]: no such finding "
                        "on this line; remove the stale pragma"
                    ),
                    snippet=ctx.snippet_line(pragma.line),
                )
            )
    return sorted(kept), n_suppressed


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw_path in paths:
        path = Path(raw_path)
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def analyze_paths(
    paths: list[str | Path],
    select: list[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint files/directories and reconcile against ``baseline``."""
    report = LintReport()
    all_findings: list[Finding] = []
    for file_path in discover_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings, n_suppressed = analyze_source(
            source, path=str(file_path), select=select
        )
        all_findings.extend(findings)
        report.n_suppressed += n_suppressed
        report.checked_files.append(str(file_path))
    if baseline is None:
        baseline = Baseline()
    report.findings, report.baselined = baseline.partition(
        sorted(all_findings)
    )
    return report
