"""Whole-program concurrency rules (REP101–REP104).

These run once per lint over the :class:`ProjectGraph` + lock model
rather than per file:

* **REP101 lock-order cycles** — two locks acquired in opposite
  nesting order anywhere in the program is a potential deadlock; the
  finding prints both acquisition paths.
* **REP102 transitive blocking-while-locked** — REP002 flags blocking
  calls lexically inside a ``with lock:`` body; REP102 upgrades it to
  *reaches blocking through any call chain*, and prints the chain.
* **REP103 unsynchronised shared state** — on a lock-owning class
  (owning a lock is this codebase's marker for crossing a thread
  boundary), an attribute mutated both under the class's lock and
  outside it (excluding ``__init__``, which happens-before
  publication) defeats the lock.
* **REP104 literal-registry drift** — Prometheus metric names and span
  names emitted somewhere but never referenced anywhere else (tests,
  assertions, scrapes) are dead telemetry or a typo'd registry entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph
from repro.analysis.locks import LockModel
from repro.analysis.rules import PROJECT_RULES, ProjectRule

__all__ = ["ProjectContext", "collect_literals", "LiteralUse"]


@dataclass
class ProjectContext:
    """Everything a project rule needs: graph, lock model, reference roots."""

    graph: ProjectGraph
    locks: LockModel
    #: Directories whose ``*.py`` files count as literal references
    #: (tests asserting on metric/span names) without being linted.
    refs: list[Path] = field(default_factory=list)


def _register_project(rule_id: str, name: str, description: str):
    def wrap(fn):
        PROJECT_RULES[rule_id] = ProjectRule(rule_id, name, description, fn)
        return fn

    return wrap


def _finding(
    project: ProjectContext, path: str, line: int, rule_id: str, message: str
) -> Finding:
    ctx = project.graph.files.get(path)
    snippet = ctx.snippet_line(line) if ctx is not None else ""
    return Finding(
        path=path,
        line=line,
        col=1,
        rule_id=rule_id,
        message=message,
        snippet=snippet,
    )


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


# -- REP101: lock-order cycle detection --------------------------------------


def _strongly_connected(
    nodes: list[str], edges_out: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's SCC (iterative); components in discovery order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    stack: list[str] = []
    on_stack: set[str] = set()
    components: list[list[str]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(sorted(edges_out.get(root, ()))))]
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges_out.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        item = stack.pop()
                        on_stack.discard(item)
                        component.append(item)
                        if item == node:
                            break
                    components.append(component)
    return components


@_register_project(
    "REP101",
    "deadlock: lock-order cycle across the program",
    "Two locks acquired in opposite nesting order anywhere in the "
    "project (lexically or through any call chain) can deadlock; the "
    "finding reports both acquisition paths.",
)
def _check_lock_order_cycles(project: ProjectContext) -> Iterator[Finding]:
    model = project.locks
    edges_out: dict[str, set[str]] = {}
    for src, dst in model.order:
        edges_out.setdefault(src, set()).add(dst)
    nodes = sorted(
        set(edges_out) | {dst for dsts in edges_out.values() for dst in dsts}
    )
    for component in _strongly_connected(nodes, edges_out):
        if len(component) < 2:
            continue
        members = sorted(component)
        in_component = set(members)
        cycle_edges = sorted(
            (
                edge
                for key, edge in model.order.items()
                if key[0] in in_component and key[1] in in_component
            ),
            key=lambda e: (e.src, e.dst),
        )
        descriptions = [
            f"{edge.src} -> {edge.dst} via {_chain_text(edge.chain)} "
            f"({edge.path}:{edge.line})"
            for edge in cycle_edges[:4]
        ]
        if len(cycle_edges) > 4:
            descriptions.append(f"... and {len(cycle_edges) - 4} more edge(s)")
        anchor = cycle_edges[0]
        yield _finding(
            project,
            anchor.path,
            anchor.line,
            "REP101",
            "lock-order cycle between "
            + ", ".join(members)
            + " — opposite nesting orders can deadlock: "
            + "; ".join(descriptions),
        )


# -- REP102: transitive blocking while a lock is held ------------------------


@_register_project(
    "REP102",
    "lock hygiene: blocking I/O reached while a lock is held",
    "A 'with lock:' body that reaches sleep/subprocess/socket/file I/O "
    "through any call chain stalls every other thread contending for "
    "the lock; the finding prints the chain. (Direct, same-function "
    "blocking stays REP002's.)",
)
def _check_transitive_blocking(project: ProjectContext) -> Iterator[Finding]:
    model = project.locks
    for region in sorted(
        model.regions, key=lambda r: (r.path, r.line, r.site.lock_id)
    ):
        reached = model.blocking_reached(region)
        if not reached:
            continue
        by_label: dict[str, tuple[str, ...]] = {}
        for chain, label in reached:
            best = by_label.get(label)
            if best is None or len(chain) < len(best):
                by_label[label] = chain
        parts = [
            f"{label}() via {_chain_text(chain)}"
            for label, chain in sorted(by_label.items())[:3]
        ]
        if len(by_label) > 3:
            parts.append(f"... and {len(by_label) - 3} more")
        yield _finding(
            project,
            region.path,
            region.line,
            "REP102",
            f"holding {region.site.lock_id} here reaches blocking "
            + "; ".join(parts)
            + " — move the slow work outside the lock",
        )


# -- REP103: attributes mutated both inside and outside lock regions ---------


@_register_project(
    "REP103",
    "races: attribute mutated both under a class's lock and outside it",
    "On a lock-owning class, mutating the same attribute under the "
    "lock in one method and without it in another defeats the lock "
    "(__init__ is excluded: construction happens-before publication).",
)
def _check_unsynchronised_state(project: ProjectContext) -> Iterator[Finding]:
    model = project.locks
    owned: dict[str, set[str]] = {}
    lock_attrs: dict[str, set[str]] = {}
    for lock_id in model.sites:
        class_qual, _, attr = lock_id.rpartition(".")
        if class_qual in project.graph.classes:
            owned.setdefault(class_qual, set()).add(lock_id)
            lock_attrs.setdefault(class_qual, set()).add(attr)
    by_class_attr: dict[tuple[str, str], list] = {}
    for mutation in model.mutations:
        if mutation.owner not in owned:
            continue
        if mutation.method_name == "__init__":
            continue
        if mutation.attr in lock_attrs.get(mutation.owner, ()):
            continue
        by_class_attr.setdefault(
            (mutation.owner, mutation.attr), []
        ).append(mutation)
    for (class_qual, attr), mutations in sorted(by_class_attr.items()):
        class_locks = owned[class_qual]
        inside = [
            m for m in mutations if any(h in class_locks for h in m.held)
        ]
        outside = [
            m for m in mutations if not any(h in class_locks for h in m.held)
        ]
        if not inside or not outside:
            continue
        anchor = min(outside, key=lambda m: (m.path, m.line))
        guarded = min(inside, key=lambda m: (m.path, m.line))
        lock_name = sorted(class_locks)[0]
        yield _finding(
            project,
            anchor.path,
            anchor.line,
            "REP103",
            f"attribute '{attr}' of {class_qual} is mutated under "
            f"{lock_name} ({guarded.path}:{guarded.line}) but also "
            f"without it here — every mutation of shared state must "
            "hold the same lock",
        )


# -- REP104: literal-registry drift ------------------------------------------


@dataclass
class LiteralUse:
    """One emitted metric/span name literal."""

    literal: str
    kind: str  # "metric" | "span"
    path: str
    line: int


def collect_literals(
    graph: ProjectGraph,
) -> tuple[list[LiteralUse], int]:
    """All emitted metric/span name literals, plus the dynamic-name count.

    Emissions are first string arguments of ``.family(...)`` /
    ``.sample(...)`` calls starting with ``repro_`` (Prometheus) and of
    ``.span(...)`` / ``obs_span(...)`` calls (tracing). Dynamic names
    (f-strings, variables) cannot be checked statically and are
    *counted*, so the ``--graph`` dump shows what the rule skipped.
    """
    uses: list[LiteralUse] = []
    n_dynamic = 0
    for path in sorted(graph.files):
        ctx = graph.files[path]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            kind = None
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in ("family", "sample"):
                    kind = "metric"
                elif node.func.attr == "span":
                    kind = "span"
            elif isinstance(node.func, ast.Name):
                resolved = ctx.resolve(node.func) or ""
                if resolved == "obs_span" or resolved.endswith(".obs_span"):
                    kind = "span"
            if kind is None:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                literal = first.value
                if kind == "metric" and not literal.startswith("repro_"):
                    continue
                uses.append(
                    LiteralUse(
                        literal=literal,
                        kind=kind,
                        path=path,
                        line=node.lineno,
                    )
                )
            else:
                n_dynamic += 1
    return uses, n_dynamic


def _quoted_occurrences(literal: str, text: str) -> int:
    return text.count(f'"{literal}"') + text.count(f"'{literal}'")


@_register_project(
    "REP104",
    "observability: metric/span name emitted but never referenced",
    "Prometheus metric names and span names form a de-facto registry; "
    "a name emitted in one module but never scraped, validated or "
    "asserted anywhere else is dead telemetry or a typo.",
)
def _check_literal_drift(project: ProjectContext) -> Iterator[Finding]:
    uses, _n_dynamic = collect_literals(project.graph)
    if not uses:
        return
    analysed: set[str] = set()
    for analysed_path in project.graph.files:
        try:
            analysed.add(str(Path(analysed_path).resolve()))
        except OSError:
            analysed.add(analysed_path)
    corpus: list[str] = [
        ctx.source for ctx in project.graph.files.values()
    ]
    for root in project.refs:
        root = Path(root)
        if not root.is_dir():
            continue
        for ref_file in sorted(root.rglob("*.py")):
            if "__pycache__" in ref_file.parts:
                continue
            if str(ref_file.resolve()) in analysed:
                continue
            try:
                corpus.append(ref_file.read_text(encoding="utf-8"))
            except OSError:
                continue
    emissions: dict[str, list[LiteralUse]] = {}
    for use in uses:
        emissions.setdefault(use.literal, []).append(use)
    for literal in sorted(emissions):
        sites = emissions[literal]
        occurrences = sum(
            _quoted_occurrences(literal, text) for text in corpus
        )
        if occurrences > len(sites):
            continue
        anchor = min(sites, key=lambda u: (u.path, u.line))
        kind = sites[0].kind
        yield _finding(
            project,
            anchor.path,
            anchor.line,
            "REP104",
            f"{kind} name '{literal}' is emitted here but never "
            "referenced anywhere else (no test, assertion or scrape "
            "mentions it) — register it in the literal-registry test "
            "or delete the emission",
        )
