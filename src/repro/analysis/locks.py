"""The project lock model: sites, regions, acquisition order, reachability.

Built on top of :mod:`repro.analysis.graph`, this gives every
``threading.Lock/RLock/Condition`` creation site a **stable identity**
(``repro.serving.http.ScoringService._engines_lock``), maps every
``with lock:`` statement to the call-graph node executing it, and
derives two relations the concurrency rules consume:

* the **acquisition-order digraph** — an edge A→B whenever a region
  holding A acquires B, either by lexical nesting or through any call
  chain (REP101 reports its cycles);
* **blocking reachability** — the set of sleep/subprocess/socket/file
  I/O calls a region can reach through the call graph (REP102).

``with`` expressions that *look* like locks but cannot be bound to a
creation site land in ``unknown_regions`` — reported in the
``--graph`` dump, never silently dropped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.graph import FunctionInfo, ProjectGraph
from repro.analysis.rules import (
    _LOCK_FACTORIES,
    _dotted,
    _looks_like_lock,
    blocking_call_name,
)

__all__ = ["LockSite", "LockRegion", "OrderEdge", "LockModel", "build_lock_model"]

#: Interprocedural BFS bounds: generous for this codebase, but a hard
#: stop against pathological graphs.
_MAX_DEPTH = 25
_MAX_VISITED = 4000


def _posix(path: str) -> str:
    return str(PurePosixPath(path.replace("\\", "/")))


@dataclass(frozen=True)
class LockSite:
    """One lock creation site with a stable, human-readable identity."""

    lock_id: str
    path: str
    line: int
    factory: str

    def rel_posix(self) -> str:
        return _posix(self.path)


@dataclass
class LockRegion:
    """One ``with <lock>:`` statement bound to its creation site."""

    site: LockSite
    function: str
    path: str
    line: int
    node: ast.With


@dataclass
class OrderEdge:
    """First observed A→B acquisition, with the call chain that does it."""

    src: str
    dst: str
    chain: tuple[str, ...]
    path: str
    line: int


@dataclass
class AttrMutation:
    """A ``self.X = ...`` / ``self.X += ...`` site, with held locks."""

    owner: str
    attr: str
    path: str
    line: int
    held: tuple[str, ...]
    function: str
    method_name: str


class LockModel:
    """Lock sites + regions + order edges over a :class:`ProjectGraph`."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        self.sites: dict[str, LockSite] = {}
        self.regions: list[LockRegion] = []
        #: lock-ish ``with`` expressions we could not bind to a site.
        self.unknown_regions: list[dict] = []
        self.order: dict[tuple[str, str], OrderEdge] = {}
        self.mutations: list[AttrMutation] = []
        self._sites_by_attr: dict[str, list[LockSite]] = {}
        self._site_by_location: dict[tuple[str, int], LockSite] = {}
        self._regions_by_function: dict[str, list[LockRegion]] = {}
        self._blocking_cache: dict[str, list[tuple[str, int]]] = {}

    # -- site collection -----------------------------------------------------

    def _add_site(self, lock_id: str, path: str, line: int, factory: str) -> None:
        if lock_id in self.sites:
            return
        site = LockSite(lock_id=lock_id, path=path, line=line, factory=factory)
        self.sites[lock_id] = site
        attr = lock_id.rsplit(".", 1)[-1]
        self._sites_by_attr.setdefault(attr, []).append(site)
        self._site_by_location[(site.rel_posix(), line)] = site

    def _collect_sites(self) -> None:
        for info in self.graph.functions.values():
            ctx = self.graph.files[info.path]
            body = getattr(info.node, "body", [])
            for stmt in _walk_lexical_stmts(body):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                factory = ctx.resolve(value.func)
                if factory not in _LOCK_FACTORIES:
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    dotted = _dotted(target)
                    if dotted is None:
                        continue
                    if (
                        dotted.startswith("self.")
                        and info.owner is not None
                        and "." not in dotted[5:]
                    ):
                        lock_id = f"{info.owner}.{dotted[5:]}"
                    elif "." not in dotted and isinstance(info.node, ast.Module):
                        lock_id = f"{info.module}.{dotted}"
                    else:
                        lock_id = f"{info.qualname}.{dotted}"
                    self._add_site(
                        lock_id, info.path, value.lineno, factory or ""
                    )

    # -- region binding ------------------------------------------------------

    def _site_on_class(self, class_qual: str, attr: str, _depth: int = 0):
        found = self.sites.get(f"{class_qual}.{attr}")
        if found is not None:
            return found
        if _depth > 8:
            return None
        cls = self.graph.classes.get(class_qual)
        if cls is None:
            return None
        for base in cls.bases:
            base_cls = self.graph.class_for_dotted(base, cls.module)
            if base_cls is not None and base_cls.qualname != class_qual:
                found = self._site_on_class(
                    base_cls.qualname, attr, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def resolve_lock_expr(
        self, info: FunctionInfo, expr: ast.AST
    ) -> tuple[LockSite | None, bool]:
        """Bind a ``with`` context expression to a lock site.

        Returns ``(site, lockish)``: ``site`` when bound; ``lockish``
        True when the expression at least *names* like a lock (so the
        miss can be reported).
        """
        dotted = _dotted(expr)
        if dotted is None:
            return None, False
        lockish = _looks_like_lock(dotted, set(self.sites))
        attr = dotted.rsplit(".", 1)[-1]

        if dotted.startswith("self.") and "." not in dotted[5:]:
            if info.owner is not None:
                found = self._site_on_class(info.owner, dotted[5:])
                if found is not None:
                    return found, True
        elif "." not in dotted:
            for prefix in self.graph._scope_prefixes(info):
                found = self.sites.get(f"{prefix}.{dotted}")
                if found is not None:
                    return found, True
            found = self.sites.get(f"{info.module}.{dotted}")
            if found is not None:
                return found, True
        else:
            head, _, tail = dotted.rpartition(".")
            receiver_cls: str | None = None
            if "." not in head:
                receiver_cls = self.graph.local_types.get(
                    info.qualname, {}
                ).get(head)
            elif head.startswith("self.") and info.owner is not None:
                owner_cls = self.graph.classes.get(info.owner)
                if owner_cls is not None:
                    receiver_cls = self.graph._attr_type(
                        owner_cls, head[5:]
                    )
            if receiver_cls is not None:
                found = self._site_on_class(receiver_cls, tail)
                if found is not None:
                    return found, True

        # Last resort: an attribute name unique across all creation
        # sites is unambiguous even when the receiver type is unknown
        # (closure variables, e.g. `service._drain_cond` in the HTTP
        # handler class).
        candidates = self._sites_by_attr.get(attr, [])
        if len(candidates) == 1:
            return candidates[0], True
        return None, lockish

    def _scan_regions(self) -> None:
        for info in self.graph.functions.values():
            self._scan_function(info)

    def _scan_function(self, info: FunctionInfo) -> None:
        body = getattr(info.node, "body", [])

        def visit(stmts: list[ast.stmt], held: tuple[LockSite, ...]) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                self._record_mutations(info, stmt, held)
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired: list[LockSite] = []
                    for item in stmt.items:
                        site, lockish = self.resolve_lock_expr(
                            info, item.context_expr
                        )
                        if site is not None:
                            region = LockRegion(
                                site=site,
                                function=info.qualname,
                                path=info.path,
                                line=stmt.lineno,
                                node=stmt,
                            )
                            self.regions.append(region)
                            self._regions_by_function.setdefault(
                                info.qualname, []
                            ).append(region)
                            for outer in held:
                                self._add_order_edge(
                                    outer,
                                    site,
                                    chain=(info.qualname,),
                                    path=info.path,
                                    line=stmt.lineno,
                                )
                            acquired.append(site)
                        elif lockish:
                            self.unknown_regions.append(
                                {
                                    "function": info.qualname,
                                    "path": info.path,
                                    "line": stmt.lineno,
                                    "expr": _dotted(item.context_expr),
                                }
                            )
                    visit(stmt.body, held + tuple(acquired))
                    continue
                for name in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, name, None)
                    if isinstance(block, list) and block and isinstance(
                        block[0], ast.stmt
                    ):
                        visit(block, held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, held)

        visit(body, ())

    def _record_mutations(
        self, info: FunctionInfo, stmt: ast.stmt, held: tuple[LockSite, ...]
    ) -> None:
        if info.owner is None:
            return
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        flattened: list[ast.expr] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flattened.extend(target.elts)
            else:
                flattened.append(target)
        for target in flattened:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.mutations.append(
                    AttrMutation(
                        owner=info.owner,
                        attr=target.attr,
                        path=info.path,
                        line=stmt.lineno,
                        held=tuple(s.lock_id for s in held),
                        function=info.qualname,
                        method_name=info.name,
                    )
                )

    # -- order edges and reachability ----------------------------------------

    def _add_order_edge(
        self,
        src: LockSite,
        dst: LockSite,
        chain: tuple[str, ...],
        path: str,
        line: int,
    ) -> None:
        if src.lock_id == dst.lock_id:
            return
        key = (src.lock_id, dst.lock_id)
        if key not in self.order:
            self.order[key] = OrderEdge(
                src=src.lock_id, dst=dst.lock_id, chain=chain,
                path=path, line=line,
            )

    def _region_call_targets(self, region: LockRegion) -> list[str]:
        info = self.graph.functions[region.function]
        ctx = self.graph.files[region.path]
        local_types = self.graph.local_types.get(region.function, {})
        targets: list[str] = []
        for node in _iter_calls(region.node.body):
            resolved = self.graph._resolve_call(info, node, ctx, local_types)
            targets.extend(resolved.targets)
        return targets

    def reach(self, region: LockRegion) -> Iterator[tuple[str, tuple[str, ...]]]:
        """BFS over the call graph from a region body.

        Yields ``(function_qualname, chain)`` for every function the
        region body can reach, where ``chain`` starts at the region's
        own function. Bounded by depth and visited-set size.
        """
        start = self._region_call_targets(region)
        visited: set[str] = set()
        queue: list[tuple[str, tuple[str, ...]]] = [
            (t, (region.function, t)) for t in start
        ]
        while queue:
            qual, chain = queue.pop(0)
            if qual in visited or len(visited) >= _MAX_VISITED:
                continue
            if len(chain) > _MAX_DEPTH:
                continue
            visited.add(qual)
            yield qual, chain
            for callee in self.graph.callees(qual):
                if callee not in visited:
                    queue.append((callee, chain + (callee,)))

    def _derive_interprocedural_edges(self) -> None:
        for region in list(self.regions):
            for qual, chain in self.reach(region):
                for inner in self._regions_by_function.get(qual, []):
                    self._add_order_edge(
                        region.site,
                        inner.site,
                        chain=chain,
                        path=region.path,
                        line=region.line,
                    )

    def blocking_in_function(self, qual: str) -> list[tuple[str, int]]:
        """Direct blocking calls (label, line) lexically inside ``qual``."""
        cached = self._blocking_cache.get(qual)
        if cached is not None:
            return cached
        info = self.graph.functions.get(qual)
        found: list[tuple[str, int]] = []
        if info is not None and not isinstance(info.node, ast.Module):
            ctx = self.graph.files[info.path]
            for node in _iter_calls(info.node.body):
                label = blocking_call_name(ctx, node)
                if label is not None:
                    found.append((label.lstrip("."), node.lineno))
        self._blocking_cache[qual] = found
        return found

    def blocking_reached(
        self, region: LockRegion
    ) -> list[tuple[tuple[str, ...], str]]:
        """(chain, blocking label) pairs reachable from a region body.

        Only *transitive* blocking (≥ 1 call hop) is returned; blocking
        directly inside the region body is REP002's, not REP102's.
        """
        found: list[tuple[tuple[str, ...], str]] = []
        for qual, chain in self.reach(region):
            for label, _line in self.blocking_in_function(qual):
                found.append((chain, label))
        return found

    def site_at(self, rel_posix_path: str, line: int) -> LockSite | None:
        """Match a runtime-observed creation location to a static site.

        Matching is by POSIX path *suffix* plus exact line, so an
        absolute runtime path matches the analyser's relative one.
        """
        exact = self._site_by_location.get((rel_posix_path, line))
        if exact is not None:
            return exact
        for (path, site_line), site in self._site_by_location.items():
            if site_line != line:
                continue
            if rel_posix_path.endswith(path) or path.endswith(rel_posix_path):
                return site
        return None

    def has_order_edge(self, src: LockSite, dst: LockSite) -> bool:
        return (src.lock_id, dst.lock_id) in self.order

    def to_dict(self) -> dict:
        """JSON-ready dump for ``repro-study lint --graph``."""
        return {
            "sites": [
                {
                    "id": site.lock_id,
                    "path": site.rel_posix(),
                    "line": site.line,
                    "factory": site.factory,
                }
                for site in sorted(
                    self.sites.values(), key=lambda s: s.lock_id
                )
            ],
            "regions": [
                {
                    "lock": region.site.lock_id,
                    "function": region.function,
                    "path": _posix(region.path),
                    "line": region.line,
                }
                for region in sorted(
                    self.regions, key=lambda r: (r.path, r.line)
                )
            ],
            "unknown_regions": sorted(
                self.unknown_regions,
                key=lambda r: (r["path"], r["line"]),
            ),
            "order_edges": [
                {
                    "from": edge.src,
                    "to": edge.dst,
                    "chain": list(edge.chain),
                    "path": _posix(edge.path),
                    "line": edge.line,
                }
                for edge in sorted(
                    self.order.values(), key=lambda e: (e.src, e.dst)
                )
            ],
        }


def _walk_lexical_stmts(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Statements in ``body`` without descending into nested scopes."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _iter_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    for node in _walk_lexical_stmts(body):
        if isinstance(node, ast.Call):
            yield node


def build_lock_model(graph: ProjectGraph) -> LockModel:
    """Derive the full lock model (sites, regions, order edges)."""
    model = LockModel(graph)
    model._collect_sites()
    model._scan_regions()
    model._derive_interprocedural_edges()
    return model
