"""The unit of lint output: one :class:`Finding` per rule violation.

A finding pins a rule to a source location and carries the offending
line so reporters (and the baseline) never need to re-read the file.
Fingerprints are deliberately *line-number free*: they hash the path,
rule and normalised snippet, so unrelated edits above a grandfathered
finding do not churn the committed baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    snippet: str = field(default="", compare=False)

    def posix_path(self) -> str:
        """``path`` with separators normalised to POSIX ``/``."""
        return self.path.replace("\\", "/")

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free).

        The path is normalised to POSIX separators so baselines written
        on Windows and POSIX hosts agree byte-for-byte.
        """
        payload = "\x1f".join(
            (self.posix_path(), self.rule_id, " ".join(self.snippet.split()))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """``path:line:col: REPxxx message`` plus the offending line."""
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule_id} {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet.strip()}"
        return text
