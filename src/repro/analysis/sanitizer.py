"""Runtime lock-order sanitizer: the dynamic half of REP101.

:func:`sanitize_locks` monkeypatches the ``threading`` lock factories
so every lock **created by repro code** is wrapped in an instrumented
proxy. Each wrapped lock remembers its creation site (path + line —
the same identity the static lock model uses), and every acquisition
records edges ``held → acquired`` into a global acquisition-order
graph. An acquisition that would close a cycle raises
:class:`~repro.exceptions.LockOrderViolation` *before* taking the lock
(strict mode), turning a potential deadlock into a loud test failure.

The observed graph cross-validates the static model from
:mod:`repro.analysis.locks`: the tier-2 stress test asserts every
observed edge exists statically, so a gap in the model fails the test
instead of rotting silently.

Locks created by the stdlib on repro's behalf (``queue.Queue``
internals, ``concurrent.futures`` plumbing) are *not* wrapped: the
factory only instruments when the calling frame's module matches the
configured prefixes, so patching is safe process-wide.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import PurePosixPath

from repro.exceptions import LockOrderViolation

__all__ = [
    "ObservedSite",
    "ObservedEdge",
    "LockOrderMonitor",
    "sanitize_locks",
    "model_gaps",
]


@dataclass(frozen=True)
class ObservedSite:
    """Where a lock was created at runtime (POSIX path + line)."""

    path: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(frozen=True)
class ObservedEdge:
    """An observed ``src held while dst acquired`` pair."""

    src: ObservedSite
    dst: ObservedSite


def _caller_site(skip_module: str) -> tuple[str, str, int]:
    """(module, posix path, line) of the nearest frame outside us."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_globals.get("__name__") == skip_module:
        frame = frame.f_back
    if frame is None:
        return "", "", 0
    module = frame.f_globals.get("__name__", "")
    path = str(PurePosixPath(frame.f_code.co_filename.replace("\\", "/")))
    return module, path, frame.f_lineno


class LockOrderMonitor:
    """Global acquisition-order graph with cycle detection.

    Thread-safe: edge recording happens under a private *raw* lock
    captured before patching, so the monitor never observes itself.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._raw_lock_factory = threading.Lock
        self._meta = threading.Lock()
        self.sites: set[ObservedSite] = set()
        self.edges: dict[ObservedEdge, int] = {}
        self.n_acquisitions = 0
        self.violations: list[str] = []
        self._local = threading.local()

    # -- per-thread held stack ----------------------------------------------

    def _held(self) -> list[ObservedSite]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- cycle detection ------------------------------------------------------

    def _reaches(self, start: ObservedSite, goal: ObservedSite) -> bool:
        """True when ``start`` reaches ``goal`` in the edge graph."""
        stack = [start]
        seen = set()
        adjacency: dict[ObservedSite, list[ObservedSite]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    def before_acquire(self, site: ObservedSite) -> None:
        """Record edges held→site; raise on a would-be cycle (strict)."""
        held = self._held()
        with self._meta:
            self.n_acquisitions += 1
            self.sites.add(site)
            cycle_with: ObservedSite | None = None
            for holder in held:
                if holder == site:
                    continue  # re-entrant RLock
                if cycle_with is None and self._reaches(site, holder):
                    cycle_with = holder
                edge = ObservedEdge(src=holder, dst=site)
                self.edges[edge] = self.edges.get(edge, 0) + 1
            if cycle_with is not None:
                message = (
                    f"lock-order cycle: acquiring {site} while holding "
                    f"{cycle_with}, but {site} -> {cycle_with} was "
                    "already observed — opposite nesting orders can "
                    "deadlock"
                )
                self.violations.append(message)
                if self.strict:
                    raise LockOrderViolation(message)
        held.append(site)

    def after_release(self, site: ObservedSite) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == site:
                del held[index]
                break

    # -- results --------------------------------------------------------------

    def observed_edges(self) -> list[ObservedEdge]:
        with self._meta:
            return sorted(
                self.edges,
                key=lambda e: (e.src.path, e.src.line, e.dst.path, e.dst.line),
            )

    def summary(self) -> str:
        with self._meta:
            return (
                f"lock sanitizer: {len(self.sites)} instrumented lock(s), "
                f"{self.n_acquisitions} acquisition(s), "
                f"{len(self.edges)} order edge(s), "
                f"{len(self.violations)} cycle(s)"
            )


class _InstrumentedLock:
    """Proxy around a real lock/condition, reporting to the monitor."""

    def __init__(self, inner, site: ObservedSite, monitor: LockOrderMonitor):
        self._inner = inner
        self._site = site
        self._monitor = monitor

    def acquire(self, *args, **kwargs):
        self._monitor.before_acquire(self._site)
        acquired = self._inner.acquire(*args, **kwargs)
        if not acquired:
            self._monitor.after_release(self._site)
        return acquired

    def release(self):
        self._inner.release()
        self._monitor.after_release(self._site)

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self._monitor.before_acquire(self._site)
        try:
            self._inner.__enter__()
        except BaseException:
            self._monitor.after_release(self._site)
            raise
        return self

    def __exit__(self, exc_type, exc, tb):
        result = self._inner.__exit__(exc_type, exc, tb)
        self._monitor.after_release(self._site)
        return result

    def __getattr__(self, name):
        # Condition.wait/wait_for/notify/notify_all and anything else
        # pass straight through to the real object.
        return getattr(self._inner, name)


def _make_factory(real_factory, monitor: LockOrderMonitor, prefixes):
    def factory(*args, **kwargs):
        inner = real_factory(*args, **kwargs)
        module, path, line = _caller_site(__name__)
        if module.startswith(prefixes):
            return _InstrumentedLock(
                inner, ObservedSite(path=path, line=line), monitor
            )
        return inner

    return factory


@contextmanager
def sanitize_locks(strict: bool = True, module_prefixes=("repro",)):
    """Instrument repro-created locks for the duration of the block.

    Usage::

        with sanitize_locks() as monitor:
            ...  # create services, run traffic
        assert not monitor.violations

    Only locks whose *creation* call originates in a module matching
    ``module_prefixes`` are wrapped; everything else gets the real
    factory, so stdlib internals are unaffected.
    """
    monitor = LockOrderMonitor(strict=strict)
    originals = {
        "Lock": threading.Lock,
        "RLock": threading.RLock,
        "Condition": threading.Condition,
    }
    prefixes = tuple(module_prefixes)
    threading.Lock = _make_factory(originals["Lock"], monitor, prefixes)
    threading.RLock = _make_factory(originals["RLock"], monitor, prefixes)
    threading.Condition = _make_factory(
        originals["Condition"], monitor, prefixes
    )
    try:
        yield monitor
    finally:
        threading.Lock = originals["Lock"]
        threading.RLock = originals["RLock"]
        threading.Condition = originals["Condition"]


def model_gaps(monitor: LockOrderMonitor, lock_model) -> list[str]:
    """Observed order edges missing from the static lock model.

    Each gap is a human-readable line; an empty list means the static
    model (:class:`repro.analysis.locks.LockModel`) explains every
    acquisition order the run actually exhibited. Sites are matched by
    POSIX path suffix + creation line, the shared identity between the
    two worlds.
    """
    gaps: list[str] = []
    for edge in monitor.observed_edges():
        src = lock_model.site_at(edge.src.path, edge.src.line)
        dst = lock_model.site_at(edge.dst.path, edge.dst.line)
        if src is None:
            gaps.append(
                f"observed lock {edge.src} has no static creation site"
            )
            continue
        if dst is None:
            gaps.append(
                f"observed lock {edge.dst} has no static creation site"
            )
            continue
        if not lock_model.has_order_edge(src, dst):
            gaps.append(
                f"observed order {src.lock_id} -> {dst.lock_id} "
                f"({edge.src} -> {edge.dst}) is missing from the "
                "static lock model"
            )
    return gaps
