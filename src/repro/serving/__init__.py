"""Model-serving subsystem: registry → engine → HTTP.

The paper's future work is deployment — "embed with a strategic and
operational decision support system".  This package is that serving
layer, built entirely on the standard library:

:class:`~repro.serving.registry.ScorerRegistry`
    Discovers, versions and hot-reloads saved
    :class:`~repro.core.deployment.CrashPronenessScorer` artefacts from
    a model directory, with checksum validation and fail-loud rejection
    of stale format versions.
:class:`~repro.serving.engine.ScoringEngine`
    Input validation against the scorer's expected segment schema,
    micro-batched scoring (concurrent requests coalesce into single
    DataTable passes) and an LRU result cache keyed by canonicalised
    rows.
:class:`~repro.serving.http.ScoringService`
    A ``ThreadingHTTPServer`` exposing ``/healthz``, ``/models``,
    ``/metrics``, ``/v1/score`` and ``/v1/score/batch`` as JSON, with
    per-endpoint request counters, latency histograms
    (:class:`~repro.serving.metrics.RequestMetrics`, built on the sweep
    engine's ``StageTimings``) and a request-body size limit.
:mod:`repro.serving.bulk`
    Process-sharded bulk scoring: network-wide batch requests shard
    across the sweep-execution process pool with worker-cached
    scorers, reassembled in request order.

The CLI front-ends are ``repro-study serve <model_dir>`` and
``repro-study score --bulk``; the load benchmarks live in
``benchmarks/bench_serving.py`` and ``benchmarks/bench_bulk_scoring.py``.
"""

from repro.serving.bulk import (
    score_rows_sharded,
    score_table_sharded,
    shard_bounds,
)
from repro.serving.engine import LRUResultCache, ScoringEngine
from repro.serving.http import ScoringService, TextResponse
from repro.serving.metrics import RequestMetrics
from repro.serving.registry import RegisteredScorer, ScorerRegistry

__all__ = [
    "LRUResultCache",
    "ScoringEngine",
    "ScoringService",
    "TextResponse",
    "RequestMetrics",
    "RegisteredScorer",
    "ScorerRegistry",
    "score_rows_sharded",
    "score_table_sharded",
    "shard_bounds",
]
