"""Process-sharded bulk scoring.

The micro-batcher in :mod:`repro.serving.engine` is tuned for many
small concurrent requests.  A network-wide re-score is the opposite
shape: one request, 10⁴–10⁵ rows.  This module shards such row lists
across the sweep-execution process pool
(:class:`~repro.parallel.executor.SweepExecutor`), scores each shard
with a worker-cached scorer, and concatenates the shard outputs in
submission order — so the result is element-for-element identical to a
single-process pass, only the wall clock differs.

Worker caching: each task ships the scorer's persisted payload (which
embeds the compiled scoring plan, see
:mod:`repro.mining.tree.compile`), and workers memoise the rebuilt
scorer by payload checksum.  A worker therefore pays the rebuild once
per model version, not once per shard, and never recompiles the plan
from the tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.deployment import CrashPronenessScorer, payload_checksum
from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import ServingError
from repro.obs.trace import span as obs_span
from repro.parallel import SweepExecutor, SweepTask

__all__ = [
    "build_request_table",
    "shard_bounds",
    "score_rows_sharded",
    "score_table_sharded",
]

#: Workers keep at most this many rebuilt scorers (hot-reloads are
#: rare; this just bounds memory if a pool outlives many versions).
_WORKER_CACHE_LIMIT = 8

_worker_scorers: dict[str, CrashPronenessScorer] = {}


def build_request_table(rows: list[dict], schema: dict[str, dict]) -> DataTable:
    """Typed columns straight from the scorer schema — no CSV-style
    inference, so an all-missing numeric column stays numeric."""
    columns = []
    for name, spec in schema.items():
        values = [row[name] for row in rows]
        if spec["kind"] == "numeric":
            columns.append(NumericColumn(name, values))
        else:
            # No explicit vocabulary: unseen labels are legal here and
            # get aligned to the training vocabulary inside the model.
            columns.append(CategoricalColumn(name, values))
    return DataTable(columns)


def shard_bounds(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans covering ``n_rows`` rows.

    Shard sizes differ by at most one row and empty shards are never
    emitted, so ``n_shards`` is a cap, not a promise.
    """
    if n_rows < 0:
        raise ServingError(f"n_rows must be >= 0, got {n_rows}")
    if n_shards < 1:
        raise ServingError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_rows) or (1 if n_rows else 0)
    base, extra = divmod(n_rows, n_shards) if n_shards else (0, 0)
    bounds = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _worker_scorer(payload: dict) -> CrashPronenessScorer:
    """Rebuild (or fetch the memoised) scorer for a payload.

    Keyed by the artefact checksum so every shard of every request for
    the same model version shares one rebuilt scorer per worker
    process.
    """
    key = payload.get("checksum") or payload_checksum(payload)
    scorer = _worker_scorers.get(key)
    if scorer is None:
        scorer = CrashPronenessScorer.from_dict(payload)
        if len(_worker_scorers) >= _WORKER_CACHE_LIMIT:
            _worker_scorers.pop(next(iter(_worker_scorers)))
        _worker_scorers[key] = scorer
    return scorer


def _score_row_shard(payload: dict, rows: list[dict]) -> list[float]:
    """Worker entry point: score one shard of request rows."""
    with obs_span("bulk.score_shard", rows=len(rows)):
        scorer = _worker_scorer(payload)
        table = build_request_table(rows, scorer.input_schema())
        return [float(p) for p in scorer.score(table)]


def _score_table_shard(payload: dict, shard: DataTable) -> np.ndarray:
    """Worker entry point: score one shard of a segment table."""
    with obs_span("bulk.score_shard", rows=shard.n_rows):
        return _worker_scorer(payload).score(shard)


def _run_sharded(
    executor: SweepExecutor,
    payload: dict,
    fn,
    pieces: list,
    stage: str,
) -> list:
    tasks = [
        SweepTask(
            key=f"{stage}/shard-{i}",
            fn=fn,
            args=(payload, piece),
            stage=stage,
        )
        for i, piece in enumerate(pieces)
    ]
    # SweepExecutor.run returns results in submission order for every
    # backend, which is what makes sharding invisible to the caller.
    results = executor.run(tasks, stage=stage)
    if len(results) != len(tasks):
        raise ServingError(
            f"bulk scoring lost shards: submitted {len(tasks)}, "
            f"got {len(results)} back"
        )
    return [r.value for r in results]


def score_rows_sharded(
    payload: dict,
    rows: list[dict],
    executor: SweepExecutor,
    stage: str = "bulk-score",
) -> list[float]:
    """Score request rows across the executor's workers.

    ``payload`` is the scorer's :meth:`~repro.core.deployment.
    CrashPronenessScorer.to_dict` artefact; rows must already be
    validated against its schema.  Returns one probability per row, in
    request order, element-for-element identical to an unsharded pass.
    """
    if not rows:
        return []
    pieces = [
        rows[start:stop]
        for start, stop in shard_bounds(len(rows), executor.n_jobs)
    ]
    shard_outputs = _run_sharded(
        executor, payload, _score_row_shard, pieces, stage
    )
    merged: list[float] = []
    for out in shard_outputs:
        merged.extend(out)
    if len(merged) != len(rows):
        raise ServingError(
            f"bulk scoring returned {len(merged)} probabilities for "
            f"{len(rows)} rows"
        )
    return merged


def score_table_sharded(
    scorer: CrashPronenessScorer,
    table: DataTable,
    n_jobs: int | None,
    executor: SweepExecutor | None = None,
) -> np.ndarray:
    """Score a segment table across a process pool (the CLI bulk path).

    With ``n_jobs=1`` (and no executor) this is exactly
    ``scorer.score(table)``; otherwise the table is cut into contiguous
    shards, scored in pool workers, and reassembled in order.
    """
    own_executor = None
    if executor is None:
        if n_jobs == 1 or table.n_rows == 0:
            return scorer.score(table)
        executor = own_executor = SweepExecutor(n_jobs=n_jobs)
    try:
        if executor.n_jobs == 1:
            return scorer.score(table)
        # Zero-copy shard views; the copy happens once, in the pickle
        # to the worker, not again here.
        pieces = [
            table.slice(start, stop)
            for start, stop in shard_bounds(table.n_rows, executor.n_jobs)
        ]
        shard_outputs = _run_sharded(
            executor, scorer.to_dict(), _score_table_shard, pieces,
            "bulk-score-table",
        )
        merged = (
            np.concatenate(shard_outputs)
            if shard_outputs
            else np.empty(0, dtype=np.float64)
        )
        if merged.shape[0] != table.n_rows:
            raise ServingError(
                f"bulk scoring returned {merged.shape[0]} probabilities "
                f"for {table.n_rows} rows"
            )
        return merged
    finally:
        if own_executor is not None:
            own_executor.shutdown()
