"""Request-level scoring on top of a registered scorer.

:class:`ScoringEngine` turns the batch-oriented
:class:`~repro.core.deployment.CrashPronenessScorer` into something a
request/response service can use:

* **validation** — every request row is checked against the scorer's
  expected input schema (missing columns, numbers where labels belong,
  and vice versa) before it gets near the model;
* **micro-batching** — concurrent single-row requests queue into a
  worker that accumulates up to ``max_batch`` rows or ``max_wait_ms``
  milliseconds and scores the lot as *one* DataTable pass, amortising
  per-call overhead exactly the way the study amortises per-threshold
  work;
* **LRU result caching** — road segments re-score constantly with
  unchanged attributes, so results are cached by canonicalised row.

The engine is model-agnostic within the scorer contract: everything it
needs (input names, column kinds) comes from
``CrashPronenessScorer.input_schema()``.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any

from repro.core.deployment import CrashPronenessScorer
from repro.datatable import DataTable
from repro.exceptions import ServingError
from repro.obs import trace as obs_trace
from repro.serving.bulk import build_request_table, score_rows_sharded

__all__ = ["LRUResultCache", "ScoringEngine", "last_queue_wait_ms"]

#: Milliseconds the calling request's rows spent in the micro-batch
#: queue, published per-context by :meth:`ScoringEngine.score_one` /
#: :meth:`ScoringEngine.score_many` after their waits resolve.  The
#: HTTP layer resets it per request and copies it into the access log
#: (``queue_wait_ms``); the sharded bulk path never queues, so it
#: leaves the value at None.
last_queue_wait_ms: ContextVar[float | None] = ContextVar(
    "repro_engine_last_queue_wait_ms", default=None
)

_SHUTDOWN = object()

#: Stand-in for NaN in cache keys.  ``float("nan")`` is unusable as a
#: dict key component: NaN != NaN, so every lookup missed and every
#: miss inserted another never-hittable entry.  The sentinel restores
#: normal hashing while staying distinct from every real value.
_NAN_KEY = "__nan__"


class LRUResultCache:
    """A thread-safe least-recently-used probability cache.

    ``max_size <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — the load benchmark uses that to measure the
    model path rather than dict lookups.
    """

    def __init__(self, max_size: int = 1024):
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[tuple, float] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> float | None:
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._data[key] = value
            self.hits += 1
            return value

    def put(self, key: tuple, value: float) -> None:
        if self.max_size <= 0:
            return
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.max_size:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0


class _Pending:
    """One queued row and the event its caller blocks on.

    ``trace_context`` is the submitting request's span context (None
    when nobody is tracing): the micro-batch worker thread runs in no
    request's context, so the link from a request to the batch that
    scored its row must travel with the row.  ``enqueued_at`` feeds the
    batch span's queue-wait attribute; ``dequeued_at`` is stamped by
    the worker when the batch starts scoring, so the waiting caller can
    report its own queue wait after :meth:`wait` returns (the event set
    orders the write before the read).
    """

    __slots__ = (
        "row", "probability", "error", "enqueued_at", "dequeued_at",
        "trace_context", "_event",
    )

    def __init__(self, row: dict, trace_context=None):
        self.row = row
        self.probability: float | None = None
        self.error: Exception | None = None
        self.enqueued_at = time.monotonic()
        self.dequeued_at: float | None = None
        self.trace_context = trace_context
        self._event = threading.Event()

    def resolve(self, probability: float) -> None:
        self.probability = probability
        self._event.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: float | None = None) -> float:
        if not self._event.wait(timeout):
            raise ServingError(
                f"scoring request timed out after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.probability is not None
        return self.probability


class ScoringEngine:
    """Validating, micro-batching, caching front-end to one scorer.

    Parameters
    ----------
    scorer:
        The loaded :class:`CrashPronenessScorer`.
    name:
        Label used in error messages and stats (the registry name).
    max_batch:
        Micro-batch size cap; the worker scores as soon as this many
        rows are queued.
    max_wait_ms:
        How long the worker holds an open batch for more arrivals
        after the first row — the latency price of batching.
    cache_size:
        LRU capacity in rows; ``0`` disables the result cache.
    bulk_jobs:
        Worker processes for :meth:`score_batch`'s sharded path;
        ``1`` (default) keeps every batch in-process.
    bulk_threshold:
        Minimum batch row count before :meth:`score_batch` shards
        across the process pool; smaller batches stay on the
        micro-batcher, whose latency they benefit from.
    tracer:
        The :class:`~repro.obs.trace.Tracer` that receives the
        micro-batch worker's spans.  The worker thread runs in no
        request's context, so it cannot rely on the context-local
        tracer; ``None`` (default) falls back to the process-wide
        default tracer at batch time.
    """

    def __init__(
        self,
        scorer: CrashPronenessScorer,
        name: str = "scorer",
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        cache_size: int = 1024,
        bulk_jobs: int = 1,
        bulk_threshold: int = 2048,
        tracer: obs_trace.Tracer | None = None,
    ):
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if bulk_threshold < 1:
            raise ServingError(
                f"bulk_threshold must be >= 1, got {bulk_threshold}"
            )
        self.scorer = scorer
        self.name = name
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.bulk_jobs = bulk_jobs
        self.bulk_threshold = bulk_threshold
        self._tracer = tracer
        self.schema = scorer.input_schema()
        self.input_names = list(self.schema)
        self.cache = LRUResultCache(cache_size)
        self.batch_sizes: list[int] = []
        self.n_scored = 0
        self.bulk_batches = 0
        self.bulk_rows = 0
        # SweepExecutor is imported lazily in _ensure_bulk_executor, so
        # the attribute cannot carry the concrete type here.
        self._bulk_executor: Any = None
        self._bulk_payload: dict | None = None
        self._bulk_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._stopping = False
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name=f"scoring-engine-{name}", daemon=True
        )
        self._worker.start()

    # -- validation --------------------------------------------------------
    def validate_row(self, row: object, index: int = 0) -> dict:
        """Check one request row against the scorer's input schema."""
        if not isinstance(row, dict):
            raise ServingError(
                f"row {index} must be an object of column values, "
                f"got {type(row).__name__}"
            )
        missing = [n for n in self.input_names if n not in row]
        if missing:
            raise ServingError(
                f"row {index} is missing input column(s) "
                f"{', '.join(repr(m) for m in missing)}; scorer "
                f"{self.name!r} expects {self.input_names}"
            )
        for column in self.input_names:
            value = row[column]
            if value is None:
                continue
            kind = self.schema[column]["kind"]
            if kind == "numeric":
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ServingError(
                        f"row {index} column {column!r} expects a number, "
                        f"got {value!r}"
                    )
            elif not isinstance(value, str):
                raise ServingError(
                    f"row {index} column {column!r} expects a label, "
                    f"got {value!r}"
                )
        return row

    def canonical_key(self, row: dict) -> tuple:
        """Cache key: input values in schema order, numerics as float.

        NaN becomes a sentinel — as a raw key component it can never
        hit (NaN compares unequal to itself), which both defeated the
        cache for missing-value rows and let duplicates accumulate.
        """
        parts = []
        for column in self.input_names:
            value = row[column]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                value = _NAN_KEY if math.isnan(value) else float(value)
            parts.append(value)
        return tuple(parts)

    # -- direct (already-batched) scoring ----------------------------------
    def score_rows(
        self, rows: list[dict], validate: bool = True
    ) -> list[float]:
        """Score rows in one DataTable pass, consulting the LRU cache."""
        if validate:
            for i, row in enumerate(rows):
                self.validate_row(row, i)
        with obs_trace.span(
            "engine.score_rows", rows=len(rows)
        ) as score_span:
            results: list[float | None] = [None] * len(rows)
            keys = [self.canonical_key(row) for row in rows]
            fresh: OrderedDict[tuple, list[int]] = OrderedDict()
            for i, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                else:
                    fresh.setdefault(key, []).append(i)
            if score_span is not None:
                score_span.attrs["cache_hits"] = len(rows) - sum(
                    len(ix) for ix in fresh.values()
                )
                score_span.attrs["fresh_rows"] = len(fresh)
            if fresh:
                table = self._build_table(
                    [rows[indices[0]] for indices in fresh.values()]
                )
                probabilities = self.scorer.score(table)
                if len(probabilities) != len(fresh):
                    raise ServingError(
                        f"scorer {self.name!r} returned "
                        f"{len(probabilities)} probabilities for "
                        f"{len(fresh)} distinct rows"
                    )
                for (key, indices), p in zip(fresh.items(), probabilities):
                    value = float(p)
                    self.cache.put(key, value)
                    for i in indices:
                        results[i] = value
            # Every slot must be filled by the cache or the fresh pass.
            # The old ``[r for r in results if r is not None]`` filter
            # silently *dropped* unfilled slots, shifting every later
            # probability onto the wrong row; losing a row is an internal
            # invariant violation and must be loud.
            unfilled = [i for i, r in enumerate(results) if r is None]
            if unfilled:
                raise ServingError(
                    f"engine {self.name!r} lost row(s) {unfilled[:5]} of "
                    f"{len(rows)} in a scoring pass"
                )
            self.n_scored += len(rows)
            return results  # fully populated: list[float]

    def _build_table(self, rows: list[dict]) -> DataTable:
        return build_request_table(rows, self.schema)

    # -- micro-batched scoring ---------------------------------------------
    def submit(self, row: dict, index: int = 0) -> _Pending:
        """Queue one validated row for the micro-batch worker."""
        if self._closed:
            raise ServingError(f"engine {self.name!r} is closed")
        self.validate_row(row, index)
        pending = _Pending(row, trace_context=obs_trace.current_context())
        self._queue.put(pending)
        return pending

    @staticmethod
    def _publish_queue_wait(pendings: list[_Pending]) -> None:
        """Set :data:`last_queue_wait_ms` to the slowest queue wait."""
        waits = [
            p.dequeued_at - p.enqueued_at
            for p in pendings
            if p.dequeued_at is not None
        ]
        if waits:
            last_queue_wait_ms.set(round(1000.0 * max(waits), 3))

    def score_one(self, row: dict, timeout: float | None = 30.0) -> float:
        """Score a single row through the micro-batcher (blocking)."""
        pending = self.submit(row)
        probability = pending.wait(timeout)
        self._publish_queue_wait([pending])
        return probability

    def score_many(
        self, rows: list[dict], timeout: float | None = 30.0
    ) -> list[float]:
        """Score a request's row list through the micro-batcher.

        All rows are queued before any result is awaited, so one
        request's rows — and any concurrent requests' rows — can share
        DataTable passes.
        """
        if not isinstance(rows, list) or not rows:
            raise ServingError("rows must be a non-empty list of objects")
        with obs_trace.span("engine.score_many", rows=len(rows)):
            pending = [self.submit(row, i) for i, row in enumerate(rows)]
            results = [p.wait(timeout) for p in pending]
            self._publish_queue_wait(pending)
            return results

    # -- process-sharded bulk scoring ---------------------------------------
    def _bulk_eligible(self, rows: list) -> bool:
        return (
            self.bulk_jobs != 1
            and len(rows) >= self.bulk_threshold
        )

    def _ensure_bulk_executor(self):
        # Imported lazily so the serial engine never touches the pool
        # machinery; created once and reused across batch requests.
        from repro.parallel import SweepExecutor

        with self._bulk_lock:
            if self._closed:
                raise ServingError(f"engine {self.name!r} is closed")
            if self._bulk_executor is None:
                self._bulk_executor = SweepExecutor(n_jobs=self.bulk_jobs)
            if self._bulk_payload is None:
                self._bulk_payload = self.scorer.to_dict()
            return self._bulk_executor, self._bulk_payload

    def score_batch(
        self, rows: list[dict], timeout: float | None = 30.0
    ) -> list[float]:
        """Score a batch request, sharding big ones across processes.

        Batches below ``bulk_threshold`` (or with ``bulk_jobs=1``) go
        through the micro-batcher exactly as :meth:`score_many`.
        Bigger ones are validated here, cut into contiguous shards and
        scored on the bulk process pool with worker-cached scorers —
        results come back in request order, element-for-element
        identical to the single-process path.  The sharded path
        bypasses the LRU cache: a network-wide re-score would only
        evict the interactive working set.
        """
        if not isinstance(rows, list) or not rows:
            raise ServingError("rows must be a non-empty list of objects")
        if not self._bulk_eligible(rows):
            return self.score_many(rows, timeout)
        with obs_trace.span(
            "engine.score_batch", rows=len(rows), bulk_jobs=self.bulk_jobs
        ):
            for i, row in enumerate(rows):
                self.validate_row(row, i)
            executor, payload = self._ensure_bulk_executor()
            probabilities = score_rows_sharded(payload, rows, executor)
        self.bulk_batches += 1
        self.bulk_rows += len(rows)
        self.n_scored += len(rows)
        return probabilities

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch and not self._stopping:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    self._stopping = True
                    break
                batch.append(item)
            self.batch_sizes.append(len(batch))
            self._score_pendings(batch)
            if self._stopping:
                break

    def _score_pendings(self, batch: list[_Pending]) -> None:
        """Score one assembled micro-batch and resolve its waiters.

        Runs in the worker thread, which has no request context: the
        batch span goes to the engine's own tracer and parents onto the
        *first* pending's shipped context (the request that opened the
        batch), carrying the batch size and that request's queue wait.
        """
        tracer = (
            self._tracer
            if self._tracer is not None
            else obs_trace.get_default_tracer()
        )
        dequeued_at = time.monotonic()
        for p in batch:
            p.dequeued_at = dequeued_at
        queue_wait = dequeued_at - batch[0].enqueued_at
        with obs_trace.use_tracer(tracer), tracer.span(
            "engine.batch",
            parent=batch[0].trace_context,
            batch_size=len(batch),
            queue_wait_ms=round(1000.0 * queue_wait, 3),
        ):
            try:
                probabilities = self.score_rows(
                    [p.row for p in batch], validate=False
                )
            except Exception as exc:  # pragma: no cover - defensive
                for p in batch:
                    p.fail(exc)
            else:
                for p, probability in zip(batch, probabilities):
                    p.resolve(probability)

    # -- lifecycle & stats -------------------------------------------------
    def close(self) -> None:
        """Stop the worker; queued requests are drained first."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=10.0)
        with self._bulk_lock:
            executor, self._bulk_executor = self._bulk_executor, None
        if executor is not None:
            executor.shutdown()

    def __enter__(self) -> "ScoringEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Counters for ``GET /metrics``: requests, batches, cache."""
        sizes = self.batch_sizes
        return {
            "rows_scored": self.n_scored,
            "batches": len(sizes),
            "max_batch_observed": max(sizes) if sizes else 0,
            "mean_batch_size": (
                sum(sizes) / len(sizes) if sizes else float("nan")
            ),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_size": len(self.cache),
            "bulk_jobs": self.bulk_jobs,
            "bulk_threshold": self.bulk_threshold,
            "bulk_batches": self.bulk_batches,
            "bulk_rows": self.bulk_rows,
        }
