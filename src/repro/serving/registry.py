"""Versioned scorer artefact registry with hot reload.

A road authority's serving host keeps its trained
:class:`~repro.core.deployment.CrashPronenessScorer` artefacts in one
model directory; :class:`ScorerRegistry` is the in-process view of that
directory.  It discovers ``*.json`` artefacts, keys each by *name*
(the file stem) plus the artefact's *format version*, verifies the
embedded checksum, and rejects — loudly, naming the file — anything
saved under a stale ``SCORER_FORMAT_VERSION``.

Hot reload is stat-based: :meth:`get` re-stats the backing file on
every lookup and transparently reloads when its ``(mtime_ns, size)``
changed, so a deploy can drop a retrained artefact into the directory
and the next request serves it.  A deleted file drops its entry and the
lookup fails with the remaining names.

Reloads are fault-tolerant: when a *known* scorer's file changes but
fails to load — corrupt checksum, truncated JSON, a rollback to a
stale format version — the registry keeps serving the last-good
scorer, remembers the bad file's stat so the corrupt bytes are parsed
once rather than per request, and counts the failure in a typed
``reload_errors`` counter surfaced through :meth:`stats` (and from
there ``/metrics``).  Only a scorer with no good version yet fails the
lookup: degraded beats down, but a host that never served a model has
nothing to degrade to.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.deployment import CrashPronenessScorer
from repro.exceptions import ReproError, ServingError

__all__ = ["RegisteredScorer", "ScorerRegistry"]

logger = logging.getLogger("repro.serving")

#: (keyword in the load error message, typed counter label).  Checked
#: in order; first match wins, ``load_error`` is the fallback.
_ERROR_TYPES = (
    ("checksum mismatch", "checksum_mismatch"),
    ("format version", "format_version"),
    ("not valid json", "invalid_json"),
    ("cannot read", "read_error"),
)


def _classify_load_error(exc: Exception) -> str:
    """Map a load failure onto a fixed-cardinality error type label."""
    message = str(exc).lower()
    for needle, label in _ERROR_TYPES:
        if needle in message:
            return label
    return "load_error"


@dataclass(frozen=True)
class RegisteredScorer:
    """One discovered artefact: the loaded scorer plus its provenance."""

    name: str
    version: int
    path: Path
    checksum: str
    scorer: CrashPronenessScorer
    mtime_ns: int
    size: int
    loaded_at: float

    @property
    def key(self) -> str:
        """The registry key: ``name@v<format version>``."""
        return f"{self.name}@v{self.version}"

    def describe(self) -> dict:
        """The ``GET /models`` row for this entry."""
        scorer = self.scorer
        return {
            "name": self.name,
            "key": self.key,
            "format_version": self.version,
            "checksum": self.checksum,
            "path": str(self.path),
            "threshold": scorer.threshold,
            "n_leaves": scorer.model.n_leaves,
            "has_regression": scorer.regression is not None,
            "inputs": list(scorer.input_schema()),
            "validation": {
                k: scorer.validation[k]
                for k in ("mcpv", "kappa", "roc_area")
                if k in scorer.validation
            },
        }


class ScorerRegistry:
    """Discovers, versions and hot-reloads scorer artefacts in a directory.

    Parameters
    ----------
    model_dir:
        Directory holding ``save()``-produced scorer JSON files.  A
        missing directory is a :class:`ServingError` — a serving host
        with nothing to serve is misconfigured, not empty.
    pattern:
        Glob selecting artefact files (default ``*.json``).
    """

    def __init__(self, model_dir: str | Path, pattern: str = "*.json"):
        self.model_dir = Path(model_dir)
        self.pattern = pattern
        self._entries: dict[str, RegisteredScorer] = {}
        #: Stat of the last file that failed to load, per name: while
        #: the bad file is unchanged the registry serves last-good
        #: without re-parsing the corrupt bytes on every request.
        self._failed_stats: dict[str, tuple[int, int]] = {}
        #: Typed reload-failure counters: (name, error_type) → count.
        self.reload_errors: dict[tuple[str, str], int] = {}
        self.n_loads = 0
        self.n_refreshes = 0
        if not self.model_dir.is_dir():
            raise ServingError(
                f"model directory {self.model_dir} does not exist"
            )

    # -- discovery ---------------------------------------------------------
    def refresh(self) -> list[str]:
        """Re-scan the directory; returns the names (re)loaded.

        New files are loaded, changed files reloaded, deleted files
        dropped.  A *new* artefact that fails validation — bad JSON,
        stale format version, checksum mismatch — aborts the refresh
        with a :class:`ServingError` naming the file: a serving host
        must not silently skip half its fleet.  A failed reload of an
        artefact that already has a good version keeps the last-good
        scorer and counts the failure instead (see the module
        docstring).
        """
        self.n_refreshes += 1
        paths = {p.stem: p for p in sorted(self.model_dir.glob(self.pattern))}
        for name in list(self._entries):
            if name not in paths:
                del self._entries[name]
                self._failed_stats.pop(name, None)
        loaded = []
        for name, path in paths.items():
            entry = self._entries.get(name)
            stat = path.stat()
            if (
                entry is not None
                and entry.mtime_ns == stat.st_mtime_ns
                and entry.size == stat.st_size
            ):
                continue
            if entry is None:
                self._entries[name] = self._load(name, path)
            else:
                try:
                    self._entries[name] = self._load(name, path)
                except ServingError as exc:
                    self._record_reload_failure(name, stat, exc)
                    continue
            self._failed_stats.pop(name, None)
            loaded.append(name)
        return loaded

    def _record_reload_failure(
        self, name: str, stat, exc: ServingError
    ) -> None:
        """Count a failed reload and pin the bad file's stat."""
        error_type = _classify_load_error(exc)
        key = (name, error_type)
        self.reload_errors[key] = self.reload_errors.get(key, 0) + 1
        already_seen = self._failed_stats.get(name) == (
            stat.st_mtime_ns,
            stat.st_size,
        )
        self._failed_stats[name] = (stat.st_mtime_ns, stat.st_size)
        if not already_seen:
            logger.warning(
                "reload of scorer %r failed (%s), keeping last-good "
                "version: %s",
                name,
                error_type,
                exc,
            )

    def _load(self, name: str, path: Path) -> RegisteredScorer:
        stat = path.stat()
        try:
            scorer = CrashPronenessScorer.load(path)
        except ServingError:
            raise
        except ReproError as exc:
            raise ServingError(f"cannot register scorer {name!r}: {exc}") from exc
        payload = scorer.to_dict()
        self.n_loads += 1
        return RegisteredScorer(
            name=name,
            version=payload["format_version"],
            path=path,
            checksum=payload["checksum"],
            scorer=scorer,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            loaded_at=time.time(),
        )

    # -- lookup ------------------------------------------------------------
    def get(self, name: str, version: int | None = None) -> RegisteredScorer:
        """The entry for ``name``, hot-reloading if its file changed.

        A changed file that fails to load does **not** fail the
        lookup: the last-good scorer keeps serving and the failure is
        counted in ``reload_errors`` (the bad file is parsed once, not
        per request).  ``version`` pins an expected format version; a
        mismatch is a :class:`ServingError` rather than a silently
        different model.
        """
        entry = self._entries.get(name)
        if entry is None:
            self.refresh()
            entry = self._entries.get(name)
            if entry is None:
                available = ", ".join(self.names()) or "none"
                raise ServingError(
                    f"no scorer named {name!r} in {self.model_dir} "
                    f"(available: {available})"
                )
        try:
            stat = entry.path.stat()
        except OSError:
            del self._entries[name]
            self._failed_stats.pop(name, None)
            available = ", ".join(self.names()) or "none"
            raise ServingError(
                f"scorer {name!r} was removed from {self.model_dir} "
                f"(available: {available})"
            ) from None
        changed = (
            stat.st_mtime_ns != entry.mtime_ns or stat.st_size != entry.size
        )
        known_bad = self._failed_stats.get(name) == (
            stat.st_mtime_ns,
            stat.st_size,
        )
        if changed and not known_bad:
            try:
                entry = self._load(name, entry.path)
            except ServingError as exc:
                self._record_reload_failure(name, stat, exc)
            else:
                self._entries[name] = entry
                self._failed_stats.pop(name, None)
        if version is not None and entry.version != version:
            raise ServingError(
                f"scorer {name!r} has format version {entry.version}, "
                f"request pinned v{version}"
            )
        return entry

    def stats(self) -> dict:
        """Registry health counters for ``/metrics``.

        ``reload_errors`` is keyed ``"<name>/<error_type>"`` — JSON
        cannot carry tuple keys — and ``degraded`` lists the scorers
        currently pinned to a last-good version because their backing
        file is bad.
        """
        return {
            "loads": self.n_loads,
            "refreshes": self.n_refreshes,
            "reload_errors": {
                f"{name}/{error_type}": count
                for (name, error_type), count in sorted(
                    self.reload_errors.items()
                )
            },
            "degraded": sorted(self._failed_stats),
        }

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[RegisteredScorer]:
        return [self._entries[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
