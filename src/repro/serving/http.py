"""Concurrent JSON-over-HTTP scoring service (stdlib only).

:class:`ScoringService` wires a :class:`~repro.serving.registry.ScorerRegistry`
and per-model :class:`~repro.serving.engine.ScoringEngine` instances
behind a :class:`http.server.ThreadingHTTPServer`:

* ``GET  /healthz``          — liveness + registry size + uptime;
* ``GET  /models``           — refresh the registry and list artefacts;
* ``GET  /metrics``          — per-endpoint request counters / latency
  percentiles, rolling 1m/5m/1h windows, build info, optional SLO
  burn rates, plus per-engine batch and cache stats (JSON), or the
  Prometheus text exposition with ``?format=prometheus``;
* ``GET  /debug/profile``    — the continuous profiler's folded stacks
  (``?format=collapsed|json``, ``?span=<name>`` filter) when the
  service was started with a profiler;
* ``POST /v1/score``         — ``{"model": ..., "row": {...}}`` → one
  probability (concurrent calls micro-batch inside the engine);
* ``POST /v1/score/batch``   — ``{"model": ..., "rows": [...]}`` → a
  probability per row, scored in shared DataTable passes.

One handler thread per connection (ThreadingHTTPServer) feeds the
engines' micro-batch queues, which is where the concurrency pays off:
N in-flight requests become ~N/max_batch model passes.

Observability: every request runs under an ``http.request`` span of
the service's tracer (handler thread → engine queue → bulk shard
workers reassemble into one trace, see :mod:`repro.obs.trace`), the
optional access log gets one JSON line per completed request carrying
that trace id, and metrics label requests by a *fixed* route table —
unknown paths share one ``"<METHOD> [unknown]"`` label so probe scans
cannot explode the metric cardinality.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError, ServingError
from repro.obs.accesslog import AccessLog
from repro.obs.burnrate import SLOBurnEngine
from repro.obs.profile import SamplingProfiler
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.trace import Tracer, use_tracer
from repro.serving.engine import ScoringEngine, last_queue_wait_ms
from repro.serving.metrics import RequestMetrics
from repro.serving.registry import ScorerRegistry

__all__ = ["ScoringService", "TextResponse", "build_info"]

logger = logging.getLogger("repro.serving.http")

#: The known route table.  Metrics endpoint labels come only from this
#: set — any other path is labelled ``"<METHOD> [unknown]"`` so a
#: scanner hitting a million distinct 404 paths produces one metric
#: series, not a million.
_GET_ROUTES = (
    "/healthz", "/models", "/metrics", "/debug/profile",
    "/v1/route/towns",
)
_POST_ROUTES = (
    "/v1/score",
    "/v1/score/batch",
    "/v1/route/score",
    "/v1/route/safest",
)

#: error_type fallbacks for statuses whose handler returns an error
#: payload without raising (so no exception class is available).
_STATUS_ERROR_TYPES = {404: "NotFound", 413: "BodyTooLarge"}


def build_info() -> dict[str, str]:
    """The build-identity label set behind ``repro_build_info``.

    Everything a scrape needs to attribute numbers to a build: package
    version, Python and numpy versions, and whether the native tree
    kernel is active (its absence alone explains a large latency
    shift).
    """
    import platform

    import numpy

    from repro import __version__
    from repro.mining.tree.kernel import native_kernel_status

    return {
        "version": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "native_kernel": native_kernel_status(),
    }


def _jsonable(value):
    """JSON-safe copy: non-finite floats become null (JSON has no NaN)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class TextResponse:
    """A plain-text response payload (e.g. the Prometheus exposition).

    Handlers return it in place of a JSON dict when the body must ship
    verbatim with a specific Content-Type.
    """

    __slots__ = ("text", "content_type")

    def __init__(
        self, text: str, content_type: str = "text/plain; charset=utf-8"
    ):
        self.text = text
        self.content_type = content_type


class ScoringService:
    """The serving process: registry + engines + HTTP front-end.

    Parameters
    ----------
    model_dir:
        Directory of saved scorer artefacts (or a ready-made
        :class:`ScorerRegistry`).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    max_batch / max_wait_ms / cache_size:
        Engine tuning, applied to every model's engine.
    bulk_jobs / bulk_threshold:
        Process-sharded bulk scoring for ``/v1/score/batch``: batches
        of at least ``bulk_threshold`` rows shard across ``bulk_jobs``
        worker processes (``1`` disables sharding).
    cutoff:
        Default probability cutoff for the ``crash_prone`` flag.
    max_body_bytes:
        Request bodies above this size are refused with HTTP 413
        before a byte is read; ``0`` disables the limit.
    tracer:
        The service's :class:`~repro.obs.trace.Tracer`.  Every request
        runs under an ``http.request`` span of this tracer and the
        engines record their batch spans into it.  ``None`` (default)
        installs a disabled tracer — zero-cost until the CLI passes a
        real one (``serve --trace-out``).
    access_log:
        Structured JSON request log: an :class:`~repro.obs.accesslog.
        AccessLog`, a path, or ``"-"`` for stdout.  A path/``"-"`` is
        opened here and closed by :meth:`close`; ``None`` disables
        logging.
    route_planner:
        A :class:`~repro.routing.planner.RoutePlanner` enabling the
        ``/v1/route/*`` endpoints (``GET /v1/route/towns``,
        ``POST /v1/route/score``, ``POST /v1/route/safest``).  ``None``
        (default) serves 404 with an enablement hint on those routes.
    burn_engine:
        An :class:`~repro.obs.burnrate.SLOBurnEngine` fed every
        completed request; its burn-rate/budget gauges join both
        ``/metrics`` formats.  ``None`` (default) disables SLO
        tracking.
    profiler:
        A :class:`~repro.obs.profile.SamplingProfiler` (not started
        here — the CLI owns its lifecycle) backing ``GET
        /debug/profile`` and the ``repro_profile_*`` series.  ``None``
        (default) serves 404 on the debug route.
    """

    def __init__(
        self,
        model_dir: str | Path | ScorerRegistry,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        cache_size: int = 1024,
        cutoff: float = 0.5,
        bulk_jobs: int = 1,
        bulk_threshold: int = 2048,
        max_body_bytes: int = 8 * 1024 * 1024,
        tracer: Tracer | None = None,
        access_log: AccessLog | str | Path | None = None,
        route_planner=None,
        burn_engine: SLOBurnEngine | None = None,
        profiler: SamplingProfiler | None = None,
    ):
        if max_body_bytes < 0:
            raise ServingError(
                f"max_body_bytes must be >= 0, got {max_body_bytes}"
            )
        if isinstance(model_dir, ScorerRegistry):
            self.registry = model_dir
        else:
            self.registry = ScorerRegistry(model_dir)
        self.registry.refresh()
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.cutoff = cutoff
        self.bulk_jobs = bulk_jobs
        self.bulk_threshold = bulk_threshold
        self.max_body_bytes = max_body_bytes
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._owns_access_log = access_log is not None and not isinstance(
            access_log, AccessLog
        )
        self.access_log = (
            AccessLog(access_log)
            if self._owns_access_log
            else (access_log if isinstance(access_log, AccessLog) else None)
        )
        self.route_planner = route_planner
        self.burn_engine = burn_engine
        self.profiler = profiler
        self.build_info = build_info()
        self.metrics = RequestMetrics()
        self._engines: dict[str, ScoringEngine] = {}
        self._engines_lock = threading.Lock()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        # Graceful-drain bookkeeping: in-flight request count guarded
        # by a condition close() waits on, so shutdown never cuts a
        # response off mid-write.
        self._inflight = 0
        self._drain_cond = threading.Condition()

    # -- engines -----------------------------------------------------------
    def engine(self, name: str) -> ScoringEngine:
        """The engine serving ``name``, rebuilt when its artefact changed.

        Engines are keyed by the artefact checksum, so a hot-reloaded
        model atomically swaps in a fresh engine (and empty cache)
        while the stale one is drained and closed.
        """
        entry = self.registry.get(name)
        key = f"{entry.key}:{entry.checksum}"
        with self._engines_lock:
            stale = None
            engine = self._engines.get(name)
            if engine is not None and engine.name != key:
                stale, engine = engine, None
            if engine is None:
                engine = ScoringEngine(
                    entry.scorer,
                    name=key,
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms,
                    cache_size=self.cache_size,
                    bulk_jobs=self.bulk_jobs,
                    bulk_threshold=self.bulk_threshold,
                    tracer=self.tracer,
                )
                self._engines[name] = engine
        if stale is not None:
            stale.close()
        return engine

    def _resolve_model(self, requested: object) -> str:
        if requested is not None:
            if not isinstance(requested, str):
                raise ServingError(
                    f"'model' must be a string, got {requested!r}"
                )
            return requested
        names = self.registry.names()
        if len(names) == 1:
            return names[0]
        available = ", ".join(names) or "none"
        raise ServingError(
            f"request must name a 'model' (available: {available})"
        )

    def _cutoff_from(self, body: dict) -> float:
        cutoff = body.get("cutoff", self.cutoff)
        if isinstance(cutoff, bool) or not isinstance(cutoff, (int, float)):
            raise ServingError(f"'cutoff' must be a number, got {cutoff!r}")
        if not 0.0 <= cutoff <= 1.0:
            raise ServingError(f"'cutoff' must be in [0, 1], got {cutoff}")
        return float(cutoff)

    @staticmethod
    def _route_town(body: dict, key: str) -> object:
        alias = "origin" if key == "from" else "destination"
        value = body.get(key, body.get(alias))
        if value is None:
            raise ServingError(
                "route request must carry 'from' and 'to' town names "
                "(or a 'path' list of towns for /v1/route/score)"
            )
        return value

    def endpoint_label(self, method: str, path: str) -> str:
        """The metrics label for a request — fixed-cardinality.

        Known routes label as ``"<METHOD> <path>"``; everything else —
        including every probing 404 — shares ``"<METHOD> [unknown]"``.
        """
        routes = _GET_ROUTES if method == "GET" else _POST_ROUTES
        if path in routes:
            return f"{method} {path}"
        return f"{method} [unknown]"

    # -- request handling --------------------------------------------------
    def handle_get(
        self, path: str, query: dict[str, str] | None = None
    ) -> tuple[int, dict | TextResponse]:
        query = query or {}
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "models": self.registry.names(),
                "uptime_seconds": time.monotonic() - self._started_at,
                "requests": self.metrics.request_count(),
            }
        if path == "/models":
            self.registry.refresh()
            return 200, {
                "model_dir": str(self.registry.model_dir),
                "models": [e.describe() for e in self.registry.entries()],
            }
        if path == "/metrics":
            with self._engines_lock:
                engines = dict(self._engines)
            stats = {
                name: engine.stats() for name, engine in engines.items()
            }
            routing = (
                self.route_planner.stats()
                if self.route_planner is not None
                else None
            )
            slo = (
                self.burn_engine.snapshot()
                if self.burn_engine is not None
                else None
            )
            profile_stats = (
                self.profiler.stats() if self.profiler is not None else None
            )
            fmt = query.get("format", "json")
            if fmt == "prometheus":
                text = render_prometheus(
                    self.metrics.prometheus_snapshot(),
                    engines=stats,
                    uptime_seconds=time.monotonic() - self._started_at,
                    n_models=len(self.registry.names()),
                    registry=self.registry.stats(),
                    routing=routing,
                    windows=self.metrics.windowed_summary(),
                    slo=slo,
                    build=self.build_info,
                    profile=profile_stats,
                )
                return 200, TextResponse(text, content_type=CONTENT_TYPE)
            if fmt != "json":
                raise ServingError(
                    f"unknown metrics format {fmt!r} "
                    f"(expected 'json' or 'prometheus')"
                )
            payload = {
                "endpoints": self.metrics.summary(),
                "engines": stats,
                "registry": self.registry.stats(),
                "windows": self.metrics.windowed_summary(),
                "build": self.build_info,
            }
            if routing is not None:
                payload["routing"] = routing
            if slo is not None:
                payload["slo"] = slo
            if profile_stats is not None:
                payload["profile"] = profile_stats
            return 200, payload
        if path == "/debug/profile":
            if self.profiler is None:
                return 404, {
                    "error": "profiling is not enabled on this service "
                    "(start it with `repro-study serve --profile`)"
                }
            span_filter = query.get("span") or None
            fmt = query.get("format", "collapsed")
            if fmt == "collapsed":
                return 200, TextResponse(
                    self.profiler.render_collapsed(span_filter) + "\n"
                )
            if fmt != "json":
                raise ServingError(
                    f"unknown profile format {fmt!r} "
                    f"(expected 'collapsed' or 'json')"
                )
            return 200, self.profiler.to_dict(span_filter)
        if path == "/v1/route/towns":
            if self.route_planner is None:
                return 404, {
                    "error": "routing is not enabled on this service "
                    "(start it with a route planner, e.g. "
                    "`repro-study serve --routes`)"
                }
            return 200, {"towns": self.route_planner.towns()}
        return 404, {"error": f"no route for GET {path}"}

    def handle_post(self, path: str, body: dict) -> tuple[int, dict]:
        if path == "/v1/score":
            name = self._resolve_model(body.get("model"))
            row = body.get("row", body.get("segment"))
            if row is None:
                raise ServingError("request body must carry a 'row' object")
            cutoff = self._cutoff_from(body)
            engine = self.engine(name)
            probability = engine.score_one(row)
            return 200, {
                "model": name,
                "threshold": engine.scorer.threshold,
                "probability": probability,
                "crash_prone": probability >= cutoff,
            }
        if path == "/v1/score/batch":
            name = self._resolve_model(body.get("model"))
            rows = body.get("rows")
            cutoff = self._cutoff_from(body)
            engine = self.engine(name)
            # Small batches micro-batch; big ones shard across the
            # bulk process pool (see ScoringEngine.score_batch).
            probabilities = engine.score_batch(rows)
            return 200, {
                "model": name,
                "threshold": engine.scorer.threshold,
                "count": len(probabilities),
                "results": [
                    {"probability": p, "crash_prone": p >= cutoff}
                    for p in probabilities
                ],
            }
        if path in ("/v1/route/score", "/v1/route/safest"):
            planner = self.route_planner
            if planner is None:
                return 404, {
                    "error": "routing is not enabled on this service "
                    "(start it with a route planner, e.g. "
                    "`repro-study serve --routes`)"
                }
            name = self._resolve_model(body.get("model"))
            entry = self.registry.get(name)
            alpha = body.get("alpha")
            if path == "/v1/route/safest":
                result = planner.plan_safest(
                    entry.scorer,
                    entry.checksum,
                    self._route_town(body, "from"),
                    self._route_town(body, "to"),
                    alpha=alpha,
                    k=body.get("k"),
                    model=name,
                )
            elif "path" in body:
                result = planner.score_path(
                    entry.scorer,
                    entry.checksum,
                    body["path"],
                    alpha=alpha,
                    model=name,
                )
            else:
                result = planner.plan_pair(
                    entry.scorer,
                    entry.checksum,
                    self._route_town(body, "from"),
                    self._route_town(body, "to"),
                    alpha=alpha,
                    model=name,
                )
            return 200, {
                "model": name,
                "checksum": entry.checksum,
                **result,
            }
        return 404, {"error": f"no route for POST {path}"}

    # -- lifecycle ---------------------------------------------------------
    def _make_server(self) -> ThreadingHTTPServer:
        service = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Buffer each response into one write and disable Nagle:
            # the default unbuffered wfile emits every header line as
            # its own TCP segment, which interacts with client delayed
            # ACKs into a ~40 ms stall per request.
            wbufsize = -1
            disable_nagle_algorithm = True

            def log_message(self, *args) -> None:  # quiet by default
                pass

            def _respond(
                self,
                status: int,
                payload: dict | TextResponse,
                trace_id: str | None = None,
            ) -> int:
                if isinstance(payload, TextResponse):
                    data = payload.text.encode("utf-8")
                    content_type = payload.content_type
                else:
                    data = json.dumps(_jsonable(payload)).encode("utf-8")
                    content_type = "application/json"
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                if trace_id is not None:
                    self.send_header("X-Repro-Trace-Id", trace_id)
                self.end_headers()
                self.wfile.write(data)
                # Flush here, not in handle_one_request: the buffered
                # wfile surfaces a dead client (BrokenPipe/reset) at
                # flush time, and only inside _dispatch's try block can
                # that be counted as a client_abort.
                self.wfile.flush()
                return len(data)

            def _handle(
                self, method: str, path: str, query: dict[str, str]
            ) -> tuple[int, dict | TextResponse | None, str | None]:
                """Route one request; returns (status, payload,
                error_type) and never raises.  A ``None`` payload
                means the client is gone — nothing to respond to."""
                try:
                    if method == "GET":
                        status, payload = service.handle_get(path, query)
                    else:
                        length = int(self.headers.get("Content-Length") or 0)
                        limit = service.max_body_bytes
                        if limit and length > limit:
                            # Refuse before reading; the unread body
                            # would desynchronise keep-alive, so the
                            # connection is closed after responding.
                            self.close_connection = True
                            return 413, {
                                "error": (
                                    f"request body of {length} bytes "
                                    f"exceeds the {limit}-byte limit"
                                ),
                            }, "BodyTooLarge"
                        try:
                            raw = self.rfile.read(length) if length else b""
                        except (
                            BrokenPipeError,
                            ConnectionResetError,
                        ):
                            # The client hung up mid-upload.  Status
                            # 499 (nginx's "client closed request")
                            # labels it; payload None skips the
                            # response entirely.
                            self.close_connection = True
                            return 499, None, "client_abort"
                        try:
                            body = json.loads(raw) if raw else {}
                        except json.JSONDecodeError as exc:
                            raise ServingError(
                                f"request body is not valid JSON: {exc}"
                            ) from exc
                        if not isinstance(body, dict):
                            raise ServingError(
                                "request body must be a JSON object"
                            )
                        status, payload = service.handle_post(path, body)
                except ReproError as exc:
                    return 400, {"error": str(exc)}, type(exc).__name__
                except Exception as exc:  # pragma: no cover - defensive
                    return (
                        500,
                        {"error": f"internal error: {exc}"},
                        type(exc).__name__,
                    )
                error_type = (
                    _STATUS_ERROR_TYPES.get(status, f"HTTP{status}")
                    if status >= 400
                    else None
                )
                return status, payload, error_type

            def _dispatch(self, method: str) -> None:
                with service._drain_cond:
                    service._inflight += 1
                try:
                    self._dispatch_inner(method)
                finally:
                    with service._drain_cond:
                        service._inflight -= 1
                        service._drain_cond.notify_all()

            def _dispatch_inner(self, method: str) -> None:
                parsed = urlsplit(self.path)
                path = parsed.path
                query = {
                    key: values[0]
                    for key, values in parse_qs(parsed.query).items()
                }
                endpoint = service.endpoint_label(method, path)
                tracer = service.tracer
                trace_id = None
                # Cleared per request so a handler that never queues
                # (GET routes, bulk path) cannot inherit the previous
                # request's queue wait from this thread's context.
                queue_wait_token = last_queue_wait_ms.set(None)
                start = time.perf_counter()
                with use_tracer(tracer), tracer.span(
                    "http.request", method=method, path=path
                ) as request_span:
                    if request_span is not None:
                        trace_id = request_span.trace_id
                    status, payload, error_type = self._handle(
                        method, path, query
                    )
                    if request_span is not None and error_type is not None:
                        request_span.status = "error"
                        request_span.error_type = error_type
                elapsed = time.perf_counter() - start
                queue_wait = last_queue_wait_ms.get()
                last_queue_wait_ms.reset(queue_wait_token)
                service.metrics.observe(
                    endpoint,
                    elapsed,
                    error=status >= 400,
                    error_type=error_type,
                    trace_id=trace_id,
                )
                if service.burn_engine is not None:
                    service.burn_engine.observe(
                        endpoint, elapsed, error=status >= 400
                    )
                n_bytes = 0
                if payload is not None:
                    try:
                        n_bytes = self._respond(
                            status, payload, trace_id=trace_id
                        )
                    except (
                        BrokenPipeError,
                        ConnectionResetError,
                    ):
                        # The client went away between sending the
                        # request and reading the response — routine
                        # under load (timeouts, impatient callers),
                        # so it gets its own typed counter and a
                        # debug line, not a stack trace.
                        error_type = error_type or "client_abort"
                        service.metrics.record_error(
                            endpoint, "client_abort"
                        )
                        logger.debug(
                            "client aborted while reading %s response "
                            "for %s",
                            status,
                            endpoint,
                        )
                        self.close_connection = True
                    except Exception as exc:
                        # The request was already counted; losing the
                        # response must not lose the error.
                        # record_error keeps the failure visible in
                        # /metrics (a second observe() would
                        # double-count the request), the connection is
                        # dropped, and the exception stops here —
                        # re-raising inside the handler thread would
                        # only vanish into ThreadingHTTPServer.
                        error_type = error_type or type(exc).__name__
                        service.metrics.record_error(
                            endpoint, type(exc).__name__
                        )
                        logger.exception(
                            "failed to write %s response for %s",
                            status,
                            endpoint,
                        )
                        self.close_connection = True
                if service.access_log is not None:
                    service.access_log.write(
                        method=method,
                        path=path,
                        status=status,
                        n_bytes=n_bytes,
                        duration_ms=1000.0 * elapsed,
                        trace_id=trace_id,
                        error_type=error_type,
                        queue_wait_ms=queue_wait,
                    )

            def do_GET(self) -> None:
                self._dispatch("GET")

            def do_POST(self) -> None:
                self._dispatch("POST")

        class Server(ThreadingHTTPServer):
            daemon_threads = True
            # socketserver's default listen backlog is 5.  A burst of
            # concurrent clients (the 64-thread stress test opens every
            # connection at once) overflows it; the kernel then drops
            # the final handshake ACK and resets the client mid-read.
            request_queue_size = 128

        server = Server((self.host, self.port), Handler)
        self.port = server.server_address[1]
        return server

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ScoringService":
        """Serve on a background thread (tests, benchmarks)."""
        if self._server is not None:
            raise ServingError("service is already running")
        self._server = self._make_server()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="scoring-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        if self._server is not None:
            raise ServingError("service is already running")
        self._server = self._make_server()
        self._server.serve_forever()

    def close(self, drain_timeout: float = 5.0) -> None:
        """Stop serving, draining in-flight requests first.

        ``shutdown()`` only stops *accepting* connections; requests
        already inside handler threads keep running.  Closing the
        engines under them would fail every in-flight response, so
        close() waits (up to ``drain_timeout`` seconds) for the
        in-flight count to reach zero before tearing anything down.
        """
        if self._server is not None:
            self._server.shutdown()
            with self._drain_cond:
                drained = self._drain_cond.wait_for(
                    lambda: self._inflight == 0, timeout=drain_timeout
                )
            if not drained:
                logger.warning(
                    "drain timeout after %.1fs with %d request(s) "
                    "in flight; closing anyway",
                    drain_timeout,
                    self._inflight,
                )
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._engines_lock:
            engines, self._engines = dict(self._engines), {}
        for engine in engines.values():
            engine.close()
        if self.access_log is not None and self._owns_access_log:
            self.access_log.close()

    def __enter__(self) -> "ScoringService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
