"""Per-endpoint request counters and latency histograms.

The serving layer measures itself with the same record types the sweep
engine uses (:mod:`repro.parallel.timing`): each HTTP endpoint is a
:class:`~repro.parallel.timing.StageTiming` whose tasks are individual
requests, so ``--timings``-style rendering, percentile maths and the
``StageTimings`` aggregate all come for free.
"""

from __future__ import annotations

import logging
import threading
from collections import Counter
from contextlib import contextmanager
from time import perf_counter

from repro.exceptions import ReproError
from repro.parallel.timing import StageTiming, StageTimings, TaskTiming

__all__ = ["RequestMetrics"]

logger = logging.getLogger("repro.serving.metrics")


class RequestMetrics:
    """Thread-safe request counters + latency histograms per endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageTiming] = {}
        self._errors: dict[str, int] = {}
        self._error_types: dict[str, Counter] = {}

    def observe(
        self,
        endpoint: str,
        seconds: float,
        error: bool = False,
        error_type: str | None = None,
    ) -> None:
        """Record one request against ``endpoint`` (e.g. ``POST /v1/score``)."""
        with self._lock:
            stage = self._stages.get(endpoint)
            if stage is None:
                stage = self._stages[endpoint] = StageTiming(stage=endpoint)
                self._errors[endpoint] = 0
                self._error_types[endpoint] = Counter()
            stage.tasks.append(
                TaskTiming(
                    key=f"{endpoint}#{len(stage.tasks)}", seconds=seconds
                )
            )
            stage.wall_seconds += seconds
            if error:
                self._errors[endpoint] += 1
                self._error_types[endpoint][error_type or "unknown"] += 1

    @contextmanager
    def timed(self, endpoint: str):
        """Context manager timing one request; exceptions count as errors.

        Library failures (:class:`ReproError`) are expected
        request-level errors: counted by type and re-raised for the
        caller's error handling.  Anything else is a bug in the serving
        stack itself, so it is additionally logged with its traceback —
        never discarded — before propagating.
        """
        start = perf_counter()
        try:
            yield
        except ReproError as exc:
            self.observe(
                endpoint,
                perf_counter() - start,
                error=True,
                error_type=type(exc).__name__,
            )
            raise
        except Exception as exc:
            self.observe(
                endpoint,
                perf_counter() - start,
                error=True,
                error_type=type(exc).__name__,
            )
            logger.exception(
                "unexpected %s handling %s", type(exc).__name__, endpoint
            )
            raise
        self.observe(endpoint, perf_counter() - start)

    # -- read side ---------------------------------------------------------
    def request_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                stage = self._stages.get(endpoint)
                return stage.n_tasks if stage is not None else 0
            return sum(s.n_tasks for s in self._stages.values())

    def error_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                return self._errors.get(endpoint, 0)
            return sum(self._errors.values())

    def summary(self) -> dict[str, dict]:
        """endpoint → counters + latency percentiles, for ``GET /metrics``."""
        with self._lock:
            out: dict[str, dict] = {}
            for endpoint in sorted(self._stages):
                stage = self._stages[endpoint]
                record = stage.latency_summary()
                record["errors"] = self._errors[endpoint]
                record["error_types"] = dict(self._error_types[endpoint])
                out[endpoint] = record
            return out

    def to_stage_timings(self) -> StageTimings:
        """The whole request log as a sweep-style ``StageTimings``."""
        with self._lock:
            return StageTimings(
                backend="serving",
                n_jobs=1,
                stages=[
                    StageTiming(
                        stage=s.stage,
                        wall_seconds=s.wall_seconds,
                        tasks=list(s.tasks),
                    )
                    for s in self._stages.values()
                ],
            )

    def render(self) -> str:
        """Fixed-width latency table (milliseconds), one row per endpoint."""
        from repro.core.reporting import render_table

        rows = []
        for endpoint, record in self.summary().items():
            rows.append(
                [
                    endpoint,
                    record["count"],
                    record["errors"],
                    f"{1000 * record['mean']:.2f}",
                    f"{1000 * record['p50']:.2f}",
                    f"{1000 * record['p95']:.2f}",
                    f"{1000 * record['p99']:.2f}",
                ]
            )
        return render_table(
            ["endpoint", "requests", "errors", "mean ms", "p50 ms",
             "p95 ms", "p99 ms"],
            rows,
            title="Request metrics",
        )
