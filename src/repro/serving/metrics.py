"""Per-endpoint request counters and latency histograms — bounded.

Earlier revisions stored one :class:`~repro.parallel.timing.TaskTiming`
per request, so a long-lived server's metrics grew without bound (the
unbounded-memory bug this module now fixes).  The per-endpoint record
keeps three bounded structures instead:

* **exact scalars** — request count, summed/maximum seconds, error
  count and per-type error counts are plain counters, exact forever;
* **fixed histogram buckets** — one counter per bound in
  :data:`BUCKET_BOUNDS`, feeding the Prometheus exposition
  (:meth:`RequestMetrics.prometheus_snapshot`);
* **a latency reservoir** — Algorithm R over at most
  :data:`RESERVOIR_SIZE` samples, driven by an inline 64-bit LCG (no
  stdlib RNG, deterministic given the arrival order).

Semantics change vs. the unbounded version: ``count`` / ``mean`` /
``max`` / error counters stay exact, but percentiles (``p50`` /
``p95`` / ``p99``) are computed over the reservoir — exact up to
``RESERVOIR_SIZE`` requests per endpoint, a uniform sample beyond
that.  ``to_stage_timings`` likewise carries at most one sampled task
per reservoir slot while ``wall_seconds`` remains the exact sum.

``errors`` can exceed ``count``: :meth:`RequestMetrics.record_error`
counts failures that happen *after* the request was timed (response
serialisation, socket writes) without a second latency observation.

Alongside the cumulative record, every endpoint carries a
:class:`~repro.obs.window.WindowedMetrics` bundle (1m/5m/1h ring
buffers) answering "rate / error-rate / p95 over the last minute" with
bounded memory — see :meth:`RequestMetrics.windowed_summary`.  Window
rings own their locks and are updated *after* the cumulative lock is
released, so cumulative counts always lead windowed counts and no two
locks are ever held together.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import Counter
from contextlib import contextmanager
from time import perf_counter
from typing import Callable

from repro.exceptions import ReproError
from repro.obs.window import WindowedMetrics
from repro.parallel.timing import StageTiming, StageTimings, TaskTiming

__all__ = ["RequestMetrics", "BUCKET_BOUNDS", "RESERVOIR_SIZE"]

logger = logging.getLogger("repro.serving.metrics")

#: Histogram bucket upper bounds in seconds (Prometheus ``le`` values);
#: the implicit final bucket is ``+Inf``.
BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Latency samples kept per endpoint; percentiles are exact below this
#: many requests and reservoir-sampled beyond it.
RESERVOIR_SIZE = 512

# 64-bit LCG (Knuth's MMIX constants): deterministic, seedless-stdlib-
# free randomness for reservoir replacement decisions.  Metrics need
# uniformity, not unpredictability.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class _EndpointRecord:
    """Bounded per-endpoint accumulator (all access under the owner's
    lock)."""

    __slots__ = (
        "count", "sum_seconds", "max_seconds", "errors", "error_types",
        "bucket_counts", "samples", "_rng_state",
    )

    def __init__(self) -> None:
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0
        self.errors = 0
        self.error_types: Counter = Counter()
        self.bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)  # [+Inf last]
        self.samples: list[float] = []
        self._rng_state = 0x9E3779B97F4A7C15

    def _next_random(self, bound: int) -> int:
        """Uniform int in [0, bound) from the record's LCG stream."""
        self._rng_state = (
            self._rng_state * _LCG_MULT + _LCG_INC
        ) & _LCG_MASK
        return (self._rng_state >> 33) % bound

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        for i, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        # Algorithm R: keep the first RESERVOIR_SIZE samples, then
        # replace a uniformly chosen slot with probability size/count.
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(seconds)
        else:
            slot = self._next_random(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (NaN when empty)."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(rank, len(ordered) - 1))]

    def summary(self) -> dict:
        if self.count == 0:
            nan = float("nan")
            record = {
                "count": 0, "mean": nan, "p50": nan,
                "p95": nan, "p99": nan, "max": nan,
            }
        else:
            record = {
                "count": self.count,
                "mean": self.sum_seconds / self.count,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
                "max": self.max_seconds,
            }
        record["errors"] = self.errors
        record["error_types"] = dict(self.error_types)
        return record


class RequestMetrics:
    """Thread-safe bounded request counters + latency histograms.

    The write-path API (:meth:`observe`, :meth:`timed`) and the read
    side (:meth:`summary`, :meth:`to_stage_timings`, :meth:`render`)
    are unchanged from the unbounded implementation; see the module
    docstring for the percentile-sampling semantics.
    """

    def __init__(
        self, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._endpoints: dict[str, _EndpointRecord] = {}
        self._windows: dict[str, WindowedMetrics] = {}

    def _record(self, endpoint: str) -> _EndpointRecord:
        record = self._endpoints.get(endpoint)
        if record is None:
            record = self._endpoints[endpoint] = _EndpointRecord()
        return record

    def _window(self, endpoint: str) -> WindowedMetrics:
        windows = self._windows.get(endpoint)
        if windows is None:
            windows = self._windows[endpoint] = WindowedMetrics(
                BUCKET_BOUNDS, clock=self._clock
            )
        return windows

    def observe(
        self,
        endpoint: str,
        seconds: float,
        error: bool = False,
        error_type: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        """Record one request against ``endpoint`` (e.g. ``POST /v1/score``).

        ``trace_id`` tags the observation in the rolling windows so the
        slowest request of any window joins back to its span waterfall.
        """
        with self._lock:
            record = self._record(endpoint)
            record.observe(seconds)
            if error:
                record.errors += 1
                record.error_types[error_type or "unknown"] += 1
            windows = self._window(endpoint)
        # Outside the cumulative lock: the rings serialise themselves,
        # and cumulative counts stay >= windowed counts for readers.
        windows.observe(seconds, error=error, trace_id=trace_id)

    def record_error(self, endpoint: str, error_type: str) -> None:
        """Count an error with no latency observation.

        For failures after the request was already observed — response
        serialisation, the socket write — so nothing silently vanishes
        from the error counters.  ``errors`` may exceed ``count`` as a
        result.
        """
        with self._lock:
            record = self._record(endpoint)
            record.errors += 1
            record.error_types[error_type or "unknown"] += 1

    @contextmanager
    def timed(self, endpoint: str):
        """Context manager timing one request; exceptions count as errors.

        Library failures (:class:`ReproError`) are expected
        request-level errors: counted by type and re-raised for the
        caller's error handling.  Anything else is a bug in the serving
        stack itself, so it is additionally logged with its traceback —
        never discarded — before propagating.
        """
        start = perf_counter()
        try:
            yield
        except ReproError as exc:
            self.observe(
                endpoint,
                perf_counter() - start,
                error=True,
                error_type=type(exc).__name__,
            )
            raise
        except Exception as exc:
            self.observe(
                endpoint,
                perf_counter() - start,
                error=True,
                error_type=type(exc).__name__,
            )
            logger.exception(
                "unexpected %s handling %s", type(exc).__name__, endpoint
            )
            raise
        self.observe(endpoint, perf_counter() - start)

    # -- read side ---------------------------------------------------------
    def request_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                record = self._endpoints.get(endpoint)
                return record.count if record is not None else 0
            return sum(r.count for r in self._endpoints.values())

    def error_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                record = self._endpoints.get(endpoint)
                return record.errors if record is not None else 0
            return sum(r.errors for r in self._endpoints.values())

    def summary(self) -> dict[str, dict]:
        """endpoint → counters + latency percentiles, for ``GET /metrics``."""
        with self._lock:
            return {
                endpoint: self._endpoints[endpoint].summary()
                for endpoint in sorted(self._endpoints)
            }

    def windowed_summary(self) -> dict[str, dict[str, dict]]:
        """endpoint → window name → rolling summary (NaN-free).

        Each window summary carries ``count`` / ``errors`` / ``rate`` /
        ``error_rate`` / ``p50`` / ``p95`` / ``p99`` / ``max`` /
        ``slowest_trace_id`` over the last 1m/5m/1h; see
        :mod:`repro.obs.window` for estimation semantics.
        """
        with self._lock:
            windows = sorted(self._windows.items())
        return {endpoint: bundle.summary() for endpoint, bundle in windows}

    def prometheus_snapshot(self) -> dict[str, dict]:
        """endpoint → exact counters + *cumulative* histogram buckets.

        The shape :func:`repro.obs.prometheus.render_prometheus`
        consumes: ``buckets`` is ``[(le_bound, cumulative_count), ...]``
        over :data:`BUCKET_BOUNDS` (the renderer adds the ``+Inf``
        bucket from ``count``).
        """
        with self._lock:
            out: dict[str, dict] = {}
            for endpoint in sorted(self._endpoints):
                record = self._endpoints[endpoint]
                cumulative = 0
                buckets = []
                for bound, n in zip(
                    BUCKET_BOUNDS, record.bucket_counts
                ):
                    cumulative += n
                    buckets.append((bound, cumulative))
                out[endpoint] = {
                    "count": record.count,
                    "sum_seconds": record.sum_seconds,
                    "errors": record.errors,
                    "error_types": dict(record.error_types),
                    "buckets": buckets,
                }
            return out

    def to_stage_timings(self) -> StageTimings:
        """The request log as a sweep-style ``StageTimings``.

        ``wall_seconds`` per endpoint is the exact latency sum; the
        task list carries the (at most ``RESERVOIR_SIZE``) sampled
        latencies, so ``n_tasks`` can undercount busy endpoints —
        ``request_count`` is the exact figure.
        """
        with self._lock:
            return StageTimings(
                backend="serving",
                n_jobs=1,
                stages=[
                    StageTiming(
                        stage=endpoint,
                        wall_seconds=record.sum_seconds,
                        tasks=[
                            TaskTiming(key=f"{endpoint}#{i}", seconds=s)
                            for i, s in enumerate(record.samples)
                        ],
                    )
                    for endpoint, record in self._endpoints.items()
                ],
            )

    def render(self) -> str:
        """Fixed-width latency table (milliseconds), one row per endpoint."""
        from repro.core.reporting import render_table

        rows = []
        for endpoint, record in self.summary().items():
            rows.append(
                [
                    endpoint,
                    record["count"],
                    record["errors"],
                    f"{1000 * record['mean']:.2f}",
                    f"{1000 * record['p50']:.2f}",
                    f"{1000 * record['p95']:.2f}",
                    f"{1000 * record['p99']:.2f}",
                ]
            )
        return render_table(
            ["endpoint", "requests", "errors", "mean ms", "p50 ms",
             "p95 ms", "p99 ms"],
            rows,
            title="Request metrics",
        )
