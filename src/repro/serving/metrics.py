"""Per-endpoint request counters and latency histograms.

The serving layer measures itself with the same record types the sweep
engine uses (:mod:`repro.parallel.timing`): each HTTP endpoint is a
:class:`~repro.parallel.timing.StageTiming` whose tasks are individual
requests, so ``--timings``-style rendering, percentile maths and the
``StageTimings`` aggregate all come for free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

from repro.parallel.timing import StageTiming, StageTimings, TaskTiming

__all__ = ["RequestMetrics"]


class RequestMetrics:
    """Thread-safe request counters + latency histograms per endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageTiming] = {}
        self._errors: dict[str, int] = {}

    def observe(
        self, endpoint: str, seconds: float, error: bool = False
    ) -> None:
        """Record one request against ``endpoint`` (e.g. ``POST /v1/score``)."""
        with self._lock:
            stage = self._stages.get(endpoint)
            if stage is None:
                stage = self._stages[endpoint] = StageTiming(stage=endpoint)
                self._errors[endpoint] = 0
            stage.tasks.append(
                TaskTiming(
                    key=f"{endpoint}#{len(stage.tasks)}", seconds=seconds
                )
            )
            stage.wall_seconds += seconds
            if error:
                self._errors[endpoint] += 1

    @contextmanager
    def timed(self, endpoint: str):
        """Context manager timing one request; exceptions count as errors."""
        start = perf_counter()
        try:
            yield
        except Exception:
            self.observe(endpoint, perf_counter() - start, error=True)
            raise
        self.observe(endpoint, perf_counter() - start)

    # -- read side ---------------------------------------------------------
    def request_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                stage = self._stages.get(endpoint)
                return stage.n_tasks if stage is not None else 0
            return sum(s.n_tasks for s in self._stages.values())

    def error_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is not None:
                return self._errors.get(endpoint, 0)
            return sum(self._errors.values())

    def summary(self) -> dict[str, dict]:
        """endpoint → counters + latency percentiles, for ``GET /metrics``."""
        with self._lock:
            out: dict[str, dict] = {}
            for endpoint in sorted(self._stages):
                stage = self._stages[endpoint]
                record = stage.latency_summary()
                record["errors"] = self._errors[endpoint]
                out[endpoint] = record
            return out

    def to_stage_timings(self) -> StageTimings:
        """The whole request log as a sweep-style ``StageTimings``."""
        with self._lock:
            return StageTimings(
                backend="serving",
                n_jobs=1,
                stages=[
                    StageTiming(
                        stage=s.stage,
                        wall_seconds=s.wall_seconds,
                        tasks=list(s.tasks),
                    )
                    for s in self._stages.values()
                ],
            )

    def render(self) -> str:
        """Fixed-width latency table (milliseconds), one row per endpoint."""
        from repro.core.reporting import render_table

        rows = []
        for endpoint, record in self.summary().items():
            rows.append(
                [
                    endpoint,
                    record["count"],
                    record["errors"],
                    f"{1000 * record['mean']:.2f}",
                    f"{1000 * record['p50']:.2f}",
                    f"{1000 * record['p95']:.2f}",
                    f"{1000 * record['p99']:.2f}",
                ]
            )
        return render_table(
            ["endpoint", "requests", "errors", "mean ms", "p50 ms",
             "p95 ms", "p99 ms"],
            rows,
            title="Request metrics",
        )
