"""Content-addressed precomputed-route cache.

:class:`RouteStore` memoises finished route responses (plain JSON-safe
dicts, so a cache hit ships byte-identical to the miss that filled it)
under keys whose **first element is the scorer artefact checksum**.
That makes the cache content-addressed to the model version: a
registry hot-reload produces a new checksum, new keys miss, and
:meth:`invalidate_checksum` purges the superseded version's entries.

Eviction is LRU with a fixed capacity; all counters (hits, misses,
invalidations, precomputed inserts) are exposed via :meth:`stats` and
surface in ``/metrics`` as ``repro_route_store_*`` series.

Lock discipline: the single lock guards only dict bookkeeping — route
computation happens outside, in the planner — so a slow graph build
never serialises unrelated cache hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import ConfigurationError

__all__ = ["RouteStore"]


class RouteStore:
    """LRU cache of computed route responses, keyed by artefact."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(
                f"store capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._precomputed = 0

    def lookup(self, key: tuple) -> dict | None:
        """The cached response for ``key``, or ``None`` (counted)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def insert(
        self, key: tuple, value: dict, precomputed: bool = False
    ) -> None:
        """Cache a response, evicting the least recently used entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            if precomputed:
                self._precomputed += 1

    def note_precomputed(self, n: int) -> None:
        """Count ``n`` entries as precompute warm-up inserts."""
        with self._lock:
            self._precomputed += n

    def invalidate_checksum(self, checksum: str) -> int:
        """Drop every entry computed from ``checksum``; returns count."""
        with self._lock:
            stale = [
                key for key in self._entries if key and key[0] == checksum
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._invalidations += n
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "precomputed": self._precomputed,
            }
