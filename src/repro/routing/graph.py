"""Risk-weighted road graph: the routing subsystem's data plane.

:class:`RiskGraph` lowers a :class:`~repro.roads.network.RoadNetwork`
plus per-segment crash-proneness probabilities into contiguous numpy
edge arrays — the same flat-array treatment the compiled tree kernels
gave scoring.  Each between-town route becomes one edge carrying:

* ``edge_length`` — route length in km;
* ``edge_risk`` — expected crash-prone kilometres: the mean scored
  probability of the route's 1 km segments times its length (routes
  whose segments were subsampled out of the study table fall back to
  the network-wide mean probability, so every edge stays routable);
* ``edge_worst`` — the worst single-segment probability on the route;
* ``edge_hotspot`` — how many of the route's scored segments fall
  inside a spatial k-means hotspot disc (phase-3 cluster geometry).

Adjacency is CSR (``indptr`` / ``adj_towns`` / ``adj_edges``) with
neighbour lists sorted by ``(town_id, edge_id)``, so traversal order —
and therefore every tie-break downstream in
:mod:`repro.routing.queries` — is deterministic.

The blended edge cost is ``(1 - alpha) * length + alpha * risk *
risk_scale`` where ``risk_scale`` normalises total network risk to
total network length: ``alpha=0`` is pure shortest-distance,
``alpha=1`` is pure risk-avoidance, and intermediate values trade km
against expected crashes on a comparable scale.

A graph is a pure function of ``(network, scores)``; it records the
scorer artefact ``checksum`` that produced the scores, which is the
content-address the :class:`~repro.routing.store.RouteStore` keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, RoutingError
from repro.roads.network import RoadNetwork

__all__ = ["RiskGraph", "COST_FLOOR"]

#: Edge costs are floored here so a zero-length/zero-risk edge can
#: never produce a zero-cost cycle for the search to spin on.
COST_FLOOR = 1e-9


@dataclass(frozen=True)
class RiskGraph:
    """Contiguous-array road graph with risk-weighted edge costs."""

    checksum: str
    """Artefact checksum of the scorer that produced the edge risks."""

    town_names: tuple[str, ...]
    town_x: np.ndarray
    town_y: np.ndarray
    town_population: np.ndarray

    edge_route_id: np.ndarray
    edge_u: np.ndarray
    edge_v: np.ndarray
    edge_length: np.ndarray
    edge_risk: np.ndarray
    edge_worst: np.ndarray
    edge_hotspot: np.ndarray
    edge_scored: np.ndarray

    indptr: np.ndarray
    adj_towns: np.ndarray
    adj_edges: np.ndarray

    risk_scale: float
    mean_probability: float
    n_scored_segments: int

    @property
    def n_towns(self) -> int:
        return len(self.town_names)

    @property
    def n_edges(self) -> int:
        return int(self.edge_u.shape[0])

    def edge_costs(self, alpha: float) -> np.ndarray:
        """Blended per-edge costs for one risk weight ``alpha``."""
        if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
            raise ConfigurationError(
                f"alpha must be a number, got {alpha!r}"
            )
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in [0, 1], got {alpha}"
            )
        blended = (
            (1.0 - alpha) * self.edge_length
            + alpha * self.edge_risk * self.risk_scale
        )
        return np.maximum(blended, COST_FLOOR)

    def neighbours(self, town_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(adjacent town ids, connecting edge ids)`` for one town."""
        start, stop = self.indptr[town_id], self.indptr[town_id + 1]
        return self.adj_towns[start:stop], self.adj_edges[start:stop]

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        segment_ids: np.ndarray,
        probabilities: np.ndarray,
        checksum: str,
        clusters: tuple = (),
    ) -> "RiskGraph":
        """Lower a scored network into edge arrays.

        ``segment_ids`` / ``probabilities`` are parallel: one scored
        probability per study-table segment.  ``clusters`` are
        :class:`~repro.roads.hotspots.SpatialCluster` discs; a segment
        inside any disc counts toward its route's hotspot crossings.
        """
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if segment_ids.shape[0] != probabilities.shape[0]:
            raise RoutingError(
                f"{segment_ids.shape[0]} segment ids with "
                f"{probabilities.shape[0]} probabilities"
            )
        if not network.towns or not network.routes:
            raise RoutingError(
                "cannot build a risk graph from an empty network"
            )
        if sorted(t.town_id for t in network.towns) != list(
            range(len(network.towns))
        ):
            raise RoutingError(
                "town ids must be contiguous 0..n-1 to lower into arrays"
            )

        # Gather (route_id, x, y) per scored segment; in-town "urban"
        # segments (route_id == -1) score but sit on no edge.
        n = segment_ids.shape[0]
        seg_route = np.full(n, -1, dtype=np.int64)
        seg_x = np.zeros(n, dtype=np.float64)
        seg_y = np.zeros(n, dtype=np.float64)
        for i in range(n):
            skeleton = network.skeleton_of(int(segment_ids[i]))
            if skeleton is None:
                raise RoutingError(
                    f"segment {int(segment_ids[i])} is not in the network"
                )
            seg_route[i] = skeleton.route_id
            seg_x[i] = skeleton.x
            seg_y[i] = skeleton.y

        in_hotspot = np.zeros(n, dtype=bool)
        for cluster in clusters:
            dx = seg_x - cluster.centre_x
            dy = seg_y - cluster.centre_y
            in_hotspot |= dx * dx + dy * dy <= cluster.radius_km**2

        on_route = seg_route >= 0
        n_routes = len(network.routes)
        prob_sum = np.zeros(n_routes, dtype=np.float64)
        scored = np.zeros(n_routes, dtype=np.int64)
        worst = np.zeros(n_routes, dtype=np.float64)
        hotspot = np.zeros(n_routes, dtype=np.int64)
        routed = seg_route[on_route]
        np.add.at(prob_sum, routed, probabilities[on_route])
        np.add.at(scored, routed, 1)
        np.maximum.at(worst, routed, probabilities[on_route])
        np.add.at(hotspot, routed, in_hotspot[on_route].astype(np.int64))

        mean_probability = (
            float(probabilities.mean()) if n else 0.0
        )
        edge_u = np.empty(n_routes, dtype=np.int64)
        edge_v = np.empty(n_routes, dtype=np.int64)
        edge_length = np.empty(n_routes, dtype=np.float64)
        edge_route_id = np.empty(n_routes, dtype=np.int64)
        for route in network.routes:
            r = route.route_id
            edge_route_id[r] = r
            edge_u[r] = route.start
            edge_v[r] = route.end
            edge_length[r] = route.length_km
        mean_prob_per_route = np.where(
            scored > 0,
            prob_sum / np.maximum(scored, 1),
            mean_probability,
        )
        edge_risk = mean_prob_per_route * edge_length

        total_risk = float(edge_risk.sum())
        total_length = float(edge_length.sum())
        risk_scale = total_length / total_risk if total_risk > 0 else 1.0

        # CSR adjacency over both edge directions, neighbour lists
        # sorted by (town, edge) for deterministic traversal.
        n_towns = len(network.towns)
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n_towns)]
        for e in range(n_routes):
            adjacency[edge_u[e]].append((int(edge_v[e]), e))
            adjacency[edge_v[e]].append((int(edge_u[e]), e))
        indptr = np.zeros(n_towns + 1, dtype=np.int64)
        adj_towns = np.empty(2 * n_routes, dtype=np.int64)
        adj_edges = np.empty(2 * n_routes, dtype=np.int64)
        cursor = 0
        for town_id in range(n_towns):
            for neighbour, e in sorted(adjacency[town_id]):
                adj_towns[cursor] = neighbour
                adj_edges[cursor] = e
                cursor += 1
            indptr[town_id + 1] = cursor

        towns = sorted(network.towns, key=lambda t: t.town_id)
        return cls(
            checksum=checksum,
            town_names=tuple(t.name for t in towns),
            town_x=np.array([t.x for t in towns], dtype=np.float64),
            town_y=np.array([t.y for t in towns], dtype=np.float64),
            town_population=np.array(
                [t.population for t in towns], dtype=np.int64
            ),
            edge_route_id=edge_route_id,
            edge_u=edge_u,
            edge_v=edge_v,
            edge_length=edge_length,
            edge_risk=edge_risk,
            edge_worst=worst,
            edge_hotspot=hotspot,
            edge_scored=scored,
            indptr=indptr,
            adj_towns=adj_towns,
            adj_edges=adj_edges,
            risk_scale=risk_scale,
            mean_probability=mean_probability,
            n_scored_segments=int(on_route.sum()),
        )

    def describe(self) -> dict:
        return {
            "checksum": self.checksum,
            "towns": self.n_towns,
            "edges": self.n_edges,
            "scored_segments": self.n_scored_segments,
            "total_length_km": float(self.edge_length.sum()),
            "total_expected_crashes": float(self.edge_risk.sum()),
            "mean_probability": self.mean_probability,
            "risk_scale": self.risk_scale,
        }
