"""Route-risk subsystem: risk-weighted road graph + route serving.

The paper scores crash proneness per 1 km segment; a navigation
backend needs *route-level* risk.  This package connects the existing
ingredients — :class:`~repro.roads.network.RoadNetwork`, the compiled
scoring kernels, phase-3 spatial hotspot clusters, the serving stack —
into a routing layer:

* :class:`~repro.routing.graph.RiskGraph` — the network lowered into
  contiguous numpy edge arrays with risk-weighted costs;
* :mod:`~repro.routing.queries` — shortest / safest / k-alternative
  route search with per-route aggregated risk;
* :class:`~repro.routing.store.RouteStore` — precomputed-route cache
  content-addressed to the scorer artefact checksum;
* :class:`~repro.routing.planner.RoutePlanner` — the control plane the
  HTTP endpoints (``/v1/route/score``, ``/v1/route/safest``) and the
  ``repro-study routes`` CLI drive.
"""

from repro.routing.graph import COST_FLOOR, RiskGraph
from repro.routing.planner import RoutePlanner
from repro.routing.queries import (
    DEFAULT_ALPHA,
    MAX_ALTERNATIVES,
    RoutePlan,
    SafestResult,
    best_route,
    k_alternative_routes,
    safest_route,
    score_town_path,
    shortest_route,
)
from repro.routing.store import RouteStore

__all__ = [
    "COST_FLOOR",
    "DEFAULT_ALPHA",
    "MAX_ALTERNATIVES",
    "RiskGraph",
    "RoutePlan",
    "RoutePlanner",
    "RouteStore",
    "SafestResult",
    "best_route",
    "k_alternative_routes",
    "safest_route",
    "score_town_path",
    "shortest_route",
]
