"""The routing control plane: scores, graphs, cache and counters.

:class:`RoutePlanner` owns everything a route query needs:

* the study dataset (network + segment table) and its spatial k-means
  hotspot clusters (phase-3 geometry, computed once per planner);
* a small LRU of :class:`~repro.routing.graph.RiskGraph` instances
  keyed by scorer artefact checksum — segments are batch-scored once
  per model version through the compiled-kernel bulk path
  (:func:`~repro.serving.bulk.score_table_sharded`), not per query;
* a :class:`~repro.routing.store.RouteStore` of finished responses,
  content-addressed to the same checksum, so a registry hot-reload
  both misses the store and purges the superseded version's entries;
* plan/build counters that ``/metrics`` exposes as ``repro_route_*``.

Tracing: every public plan method runs under a ``routing.plan`` span
(the first query for a new artefact nests a ``routing.build`` span;
each search nests ``routing.search``), so route requests produce one
connected trace tree exactly like score requests do.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import ConfigurationError, RoutingError
from repro.obs.trace import span as obs_span
from repro.roads.generator import RoadCrashDataset
from repro.roads.hotspots import spatial_kmeans_hotspots
from repro.routing import queries
from repro.routing.graph import RiskGraph
from repro.routing.queries import DEFAULT_ALPHA, MAX_ALTERNATIVES
from repro.routing.store import RouteStore
from repro.serving.bulk import score_table_sharded

__all__ = ["RoutePlanner"]


class RoutePlanner:
    """Answer route-risk queries for one study dataset.

    Parameters
    ----------
    dataset:
        The generated study area (network + scored segment table).
    n_clusters / cluster_seed:
        Spatial k-means hotspot geometry; skipped when the dataset has
        fewer crashes than clusters.
    n_jobs:
        Process shards for the one-off segment scoring pass (``1`` =
        in-process, the serving default).
    store_capacity / max_graphs:
        Bounds on the response cache and the per-artefact graph LRU.
    default_alpha:
        Risk weight used when a request does not name one.
    """

    def __init__(
        self,
        dataset: RoadCrashDataset,
        n_clusters: int = 8,
        cluster_seed: int = 0,
        n_jobs: int = 1,
        store_capacity: int = 1024,
        max_graphs: int = 4,
        default_alpha: float = DEFAULT_ALPHA,
    ):
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_graphs < 1:
            raise ConfigurationError(
                f"max_graphs must be >= 1, got {max_graphs}"
            )
        if not 0.0 <= default_alpha <= 1.0:
            raise ConfigurationError(
                f"default_alpha must be in [0, 1], got {default_alpha}"
            )
        self.dataset = dataset
        self.network = dataset.network
        self.n_jobs = n_jobs
        self.default_alpha = float(default_alpha)
        n_crashes = dataset.crash_instances.n_rows
        self.clusters = (
            spatial_kmeans_hotspots(dataset, n_clusters, seed=cluster_seed)
            if 0 < n_clusters <= n_crashes
            else []
        )
        self.store = RouteStore(store_capacity)
        self.max_graphs = max_graphs
        self._graphs: OrderedDict[str, RiskGraph] = OrderedDict()
        self._model_checksums: dict[str, str] = {}
        self._lock = threading.Lock()
        self._graph_builds = 0
        self._plans = {"score": 0, "safest": 0, "path": 0}

    # -- graph lifecycle ---------------------------------------------------
    def graph_for(self, scorer, checksum: str, model: str | None = None) -> RiskGraph:
        """The risk graph for one scorer artefact, built at most once.

        ``model`` (the registry name) lets a hot reload purge the
        superseded checksum's cached routes and graph.
        """
        if model is not None:
            self._note_model(model, checksum)
        with self._lock:
            graph = self._graphs.get(checksum)
            if graph is not None:
                self._graphs.move_to_end(checksum)
                return graph
        # Build outside the lock: scoring every segment can take a
        # while and must not serialise unrelated cache hits.  A rare
        # concurrent duplicate build loses the race below and is
        # dropped.
        graph = self._build_graph(scorer, checksum)
        with self._lock:
            existing = self._graphs.get(checksum)
            if existing is not None:
                return existing
            self._graphs[checksum] = graph
            while len(self._graphs) > self.max_graphs:
                self._graphs.popitem(last=False)
            self._graph_builds += 1
        return graph

    def _note_model(self, model: str, checksum: str) -> None:
        stale = None
        with self._lock:
            previous = self._model_checksums.get(model)
            if previous != checksum:
                self._model_checksums[model] = checksum
                if previous is not None:
                    self._graphs.pop(previous, None)
                    stale = previous
        if stale is not None:
            self.store.invalidate_checksum(stale)

    def _build_graph(self, scorer, checksum: str) -> RiskGraph:
        table = self.dataset.segment_table
        with obs_span(
            "routing.build", checksum=checksum, segments=table.n_rows
        ):
            probabilities = score_table_sharded(
                scorer, table, n_jobs=self.n_jobs
            )
            segment_ids = table.numeric("segment_id").astype(int)
            return RiskGraph.build(
                self.network,
                segment_ids,
                probabilities,
                checksum=checksum,
                clusters=tuple(self.clusters),
            )

    # -- request-level queries ----------------------------------------------
    def _alpha(self, alpha) -> float:
        if alpha is None:
            return self.default_alpha
        if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
            raise RoutingError(f"'alpha' must be a number, got {alpha!r}")
        return float(alpha)

    def _k(self, k) -> int:
        if k is None:
            return 3
        if isinstance(k, bool) or not isinstance(k, int):
            raise RoutingError(f"'k' must be an integer, got {k!r}")
        if not 1 <= k <= MAX_ALTERNATIVES:
            raise RoutingError(
                f"'k' must be in [1, {MAX_ALTERNATIVES}], got {k}"
            )
        return k

    def _count_plan(self, kind: str) -> None:
        with self._lock:
            self._plans[kind] += 1

    def plan_pair(
        self,
        scorer,
        checksum: str,
        origin,
        dest,
        alpha=None,
        model: str | None = None,
    ) -> dict:
        """Risk breakdown for the best blended route of a town pair."""
        alpha = self._alpha(alpha)
        o = self.network.town_named(origin)
        d = self.network.town_named(dest)
        key = (checksum, "score", o.town_id, d.town_id, alpha)
        with obs_span(
            "routing.plan", kind="score", origin=o.name, destination=d.name,
            alpha=alpha,
        ):
            self._count_plan("score")
            cached = self.store.lookup(key)
            if cached is not None:
                return cached
            graph = self.graph_for(scorer, checksum, model)
            plan = queries.best_route(graph, o.town_id, d.town_id, alpha)
            response = {
                "origin": o.name,
                "destination": d.name,
                "alpha": alpha,
                "route": plan.to_dict(),
            }
            self.store.insert(key, response)
            return response

    def plan_safest(
        self,
        scorer,
        checksum: str,
        origin,
        dest,
        alpha=None,
        k=None,
        model: str | None = None,
    ) -> dict:
        """Safest plan vs the shortest, with the alternatives weighed."""
        alpha = self._alpha(alpha)
        k = self._k(k)
        o = self.network.town_named(origin)
        d = self.network.town_named(dest)
        key = (checksum, "safest", o.town_id, d.town_id, alpha, k)
        with obs_span(
            "routing.plan", kind="safest", origin=o.name,
            destination=d.name, alpha=alpha, k=k,
        ):
            self._count_plan("safest")
            cached = self.store.lookup(key)
            if cached is not None:
                return cached
            graph = self.graph_for(scorer, checksum, model)
            result = queries.safest_route(
                graph, o.town_id, d.town_id, alpha, k
            )
            response = {
                "origin": o.name,
                "destination": d.name,
                "alpha": alpha,
                "k": k,
                **result.to_dict(),
            }
            self.store.insert(key, response)
            return response

    def score_path(
        self,
        scorer,
        checksum: str,
        towns: list,
        alpha=None,
        model: str | None = None,
    ) -> dict:
        """Risk breakdown for an explicit town sequence."""
        alpha = self._alpha(alpha)
        if not isinstance(towns, (list, tuple)) or not towns:
            raise RoutingError(
                "'path' must be a non-empty list of town names"
            )
        resolved = [self.network.town_named(t) for t in towns]
        ids = tuple(t.town_id for t in resolved)
        key = (checksum, "path", ids, alpha)
        with obs_span(
            "routing.plan", kind="path", n_towns=len(ids), alpha=alpha
        ):
            self._count_plan("path")
            cached = self.store.lookup(key)
            if cached is not None:
                return cached
            graph = self.graph_for(scorer, checksum, model)
            plan = queries.score_town_path(graph, list(ids), alpha)
            response = {"route": plan.to_dict()}
            self.store.insert(key, response)
            return response

    # -- precompute / reporting ----------------------------------------------
    def popular_pairs(self, limit: int = 32) -> list[tuple[str, str]]:
        """Top town pairs by population product — the precompute set.

        Deterministic: sorted by ``(-pop_a*pop_b, id_a, id_b)`` over the
        largest towns, no randomness involved.
        """
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        towns = sorted(
            self.network.towns,
            key=lambda t: (-t.population, t.town_id),
        )[:24]
        pairs = [
            (a, b)
            for i, a in enumerate(towns)
            for b in towns[i + 1:]
        ]
        pairs.sort(
            key=lambda p: (
                -(p[0].population * p[1].population),
                p[0].town_id,
                p[1].town_id,
            )
        )
        return [(a.name, b.name) for a, b in pairs[:limit]]

    def precompute(
        self,
        scorer,
        checksum: str,
        pairs: list[tuple[str, str]] | None = None,
        alpha=None,
        k=None,
        limit: int = 32,
        model: str | None = None,
    ) -> int:
        """Warm the store with safest + best plans for popular pairs."""
        if pairs is None:
            pairs = self.popular_pairs(limit)
        n = 0
        for origin, dest in pairs:
            self.plan_safest(
                scorer, checksum, origin, dest, alpha=alpha, k=k,
                model=model,
            )
            self.plan_pair(
                scorer, checksum, origin, dest, alpha=alpha, model=model
            )
            n += 2
        self.store.note_precomputed(n)
        return n

    def top_risk_routes(
        self, scorer, checksum: str, limit: int = 10,
        model: str | None = None,
    ) -> list[dict]:
        """The network's riskiest edges (by expected crashes), worst first."""
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        graph = self.graph_for(scorer, checksum, model)
        order = sorted(
            range(graph.n_edges),
            key=lambda e: (-float(graph.edge_risk[e]), e),
        )[:limit]
        return [
            {
                "route_id": int(graph.edge_route_id[e]),
                "from": graph.town_names[int(graph.edge_u[e])],
                "to": graph.town_names[int(graph.edge_v[e])],
                "length_km": round(float(graph.edge_length[e]), 6),
                "expected_crashes": round(float(graph.edge_risk[e]), 6),
                "worst_segment_probability": round(
                    float(graph.edge_worst[e]), 6
                ),
                "hotspot_segments": int(graph.edge_hotspot[e]),
                "scored_segments": int(graph.edge_scored[e]),
            }
            for e in order
        ]

    def towns(self) -> list[dict]:
        """Town directory for clients building route requests."""
        return [
            {
                "town_id": t.town_id,
                "name": t.name,
                "x": round(t.x, 6),
                "y": round(t.y, 6),
                "population": t.population,
            }
            for t in sorted(self.network.towns, key=lambda t: t.town_id)
        ]

    def stats(self) -> dict:
        """Counter snapshot for ``/metrics``."""
        with self._lock:
            plans = dict(self._plans)
            graph_builds = self._graph_builds
            graphs_cached = len(self._graphs)
        return {
            "towns": len(self.network.towns),
            "routes": len(self.network.routes),
            "clusters": len(self.clusters),
            "graph_builds": graph_builds,
            "graphs_cached": graphs_cached,
            "plans": plans,
            "store": self.store.stats(),
        }
