"""Route queries over a :class:`~repro.routing.graph.RiskGraph`.

Three query families, all deterministic for a fixed graph:

* :func:`shortest_route` / :func:`best_route` — single-pair Dijkstra
  over the CSR adjacency, at ``alpha=0`` (pure distance) or a blended
  risk weight;
* :func:`k_alternative_routes` — Yen's loopless k-shortest paths,
  giving genuinely distinct alternatives rather than micro-variations;
* :func:`safest_route` — picks the minimum-expected-crashes plan from
  ``{shortest} ∪ {k risk-weighted alternatives}``.  Because the
  shortest path is itself a candidate, the safest plan's aggregated
  risk is ≤ the shortest plan's *by construction* — the property the
  serving acceptance test pins.

Determinism: the heap orders by ``(cost, town_id)``, relaxation uses
strict ``<`` over a fixed adjacency order, and candidate selection in
Yen's loop breaks cost ties on the town-id sequence.  Two runs over
the same graph produce bit-identical plans.

Each public query runs under a ``routing.search`` span so it joins the
per-request trace tree under the planner's ``routing.plan`` span.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import RoutingError
from repro.obs.trace import span as obs_span
from repro.routing.graph import RiskGraph

__all__ = [
    "RoutePlan",
    "SafestResult",
    "DEFAULT_ALPHA",
    "MAX_ALTERNATIVES",
    "shortest_route",
    "best_route",
    "k_alternative_routes",
    "safest_route",
    "score_town_path",
]

#: Default blend between distance and risk for "best" routes.
DEFAULT_ALPHA = 0.3

#: Upper bound on k for alternative-route queries (Yen's is O(k·n·E)).
MAX_ALTERNATIVES = 8


@dataclass(frozen=True)
class RoutePlan:
    """One concrete route with its aggregated risk breakdown."""

    towns: tuple[str, ...]
    route_ids: tuple[int, ...]
    length_km: float
    expected_crashes: float
    """Sum of per-edge expected crash-prone kilometres."""
    worst_segment_probability: float
    hotspot_crossings: int
    """Scored segments on the route inside spatial hotspot discs."""
    cost: float
    alpha: float

    def to_dict(self) -> dict:
        return {
            "towns": list(self.towns),
            "route_ids": list(self.route_ids),
            "n_legs": len(self.route_ids),
            "length_km": round(self.length_km, 6),
            "expected_crashes": round(self.expected_crashes, 6),
            "worst_segment_probability": round(
                self.worst_segment_probability, 6
            ),
            "hotspot_crossings": self.hotspot_crossings,
            "cost": round(self.cost, 6),
            "alpha": self.alpha,
        }


@dataclass(frozen=True)
class SafestResult:
    """Safest plan, the shortest plan it is compared against, and the
    alternatives considered."""

    shortest: RoutePlan
    safest: RoutePlan
    alternatives: tuple[RoutePlan, ...]

    def to_dict(self) -> dict:
        return {
            "safest": self.safest.to_dict(),
            "shortest": self.shortest.to_dict(),
            "risk_reduction": round(
                self.shortest.expected_crashes
                - self.safest.expected_crashes,
                6,
            ),
            "extra_length_km": round(
                self.safest.length_km - self.shortest.length_km, 6
            ),
            "n_alternatives": len(self.alternatives),
            "alternatives": [p.to_dict() for p in self.alternatives],
        }


def _town_index(graph: RiskGraph, town_id: int) -> int:
    if isinstance(town_id, bool) or not isinstance(town_id, (int, np.integer)):
        raise RoutingError(f"town id must be an integer, got {town_id!r}")
    if not 0 <= town_id < graph.n_towns:
        raise RoutingError(
            f"town id {town_id} out of range for a "
            f"{graph.n_towns}-town graph"
        )
    return int(town_id)


def _dijkstra(
    graph: RiskGraph,
    costs: np.ndarray,
    source: int,
    target: int,
    banned_towns: frozenset[int] = frozenset(),
    banned_edges: frozenset[int] = frozenset(),
) -> tuple[tuple[int, ...], tuple[int, ...], float] | None:
    """Min-cost path ``source → target``; ``None`` when disconnected.

    Returns ``(town ids, edge ids, total cost)``.  Ties break on town
    id via the heap tuple and on first-relaxation via strict ``<``, so
    the result is a pure function of the graph and the ban sets.
    """
    n = graph.n_towns
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    prev_town = np.full(n, -1, dtype=np.int64)
    prev_edge = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, adj_towns, adj_edges = (
        graph.indptr, graph.adj_towns, graph.adj_edges
    )
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        if u == target:
            break
        for k in range(indptr[u], indptr[u + 1]):
            v = int(adj_towns[k])
            e = int(adj_edges[k])
            if done[v] or v in banned_towns or e in banned_edges:
                continue
            nd = d + float(costs[e])
            if nd < dist[v]:
                dist[v] = nd
                prev_town[v] = u
                prev_edge[v] = e
                heapq.heappush(heap, (nd, v))
    if not done[target]:
        return None
    towns = [target]
    edges = []
    u = target
    while u != source:
        edges.append(int(prev_edge[u]))
        u = int(prev_town[u])
        towns.append(u)
    towns.reverse()
    edges.reverse()
    return tuple(towns), tuple(edges), float(dist[target])


def _plan(
    graph: RiskGraph,
    towns: tuple[int, ...],
    edges: tuple[int, ...],
    cost: float,
    alpha: float,
) -> RoutePlan:
    edge_ids = np.asarray(edges, dtype=np.int64)
    return RoutePlan(
        towns=tuple(graph.town_names[t] for t in towns),
        route_ids=tuple(int(graph.edge_route_id[e]) for e in edges),
        length_km=float(graph.edge_length[edge_ids].sum()),
        expected_crashes=float(graph.edge_risk[edge_ids].sum()),
        worst_segment_probability=(
            float(graph.edge_worst[edge_ids].max()) if edges else 0.0
        ),
        hotspot_crossings=int(graph.edge_hotspot[edge_ids].sum()),
        cost=cost,
        alpha=alpha,
    )


def _search(
    graph: RiskGraph, origin: int, dest: int, alpha: float
) -> tuple[tuple[int, ...], tuple[int, ...], float]:
    costs = graph.edge_costs(alpha)
    found = _dijkstra(graph, costs, origin, dest)
    if found is None:
        raise RoutingError(
            f"no route between {graph.town_names[origin]!r} and "
            f"{graph.town_names[dest]!r}"
        )
    return found


def _validate_pair(graph: RiskGraph, origin: int, dest: int) -> tuple[int, int]:
    origin = _town_index(graph, origin)
    dest = _town_index(graph, dest)
    if origin == dest:
        raise RoutingError(
            f"origin and destination are the same town "
            f"({graph.town_names[origin]!r})"
        )
    return origin, dest


def shortest_route(graph: RiskGraph, origin: int, dest: int) -> RoutePlan:
    """Pure shortest-distance route (``alpha=0``)."""
    origin, dest = _validate_pair(graph, origin, dest)
    with obs_span("routing.search", mode="shortest",
                  origin=origin, destination=dest):
        towns, edges, cost = _search(graph, origin, dest, 0.0)
        return _plan(graph, towns, edges, cost, 0.0)


def best_route(
    graph: RiskGraph, origin: int, dest: int, alpha: float = DEFAULT_ALPHA
) -> RoutePlan:
    """Minimum blended-cost route at risk weight ``alpha``."""
    origin, dest = _validate_pair(graph, origin, dest)
    with obs_span("routing.search", mode="best",
                  origin=origin, destination=dest, alpha=alpha):
        towns, edges, cost = _search(graph, origin, dest, alpha)
        return _plan(graph, towns, edges, cost, alpha)


def _yen(
    graph: RiskGraph,
    costs: np.ndarray,
    origin: int,
    dest: int,
    k: int,
) -> list[tuple[tuple[int, ...], tuple[int, ...], float]]:
    """Yen's loopless k-shortest paths under one cost vector."""
    first = _dijkstra(graph, costs, origin, dest)
    if first is None:
        raise RoutingError(
            f"no route between {graph.town_names[origin]!r} and "
            f"{graph.town_names[dest]!r}"
        )
    accepted = [first]
    seen = {first[1]}
    candidates: list[tuple[float, tuple[int, ...], tuple[int, ...]]] = []
    while len(accepted) < k:
        prev_towns, prev_edges, _ = accepted[-1]
        for spur_at in range(len(prev_towns) - 1):
            spur_town = prev_towns[spur_at]
            root_towns = prev_towns[: spur_at + 1]
            root_edges = prev_edges[:spur_at]
            # Ban every accepted path's continuation edge at this root
            # (forces a different spur) and the root's interior towns
            # (keeps paths loopless).
            banned_edges = {
                towns_edges[1][spur_at]
                for towns_edges in accepted
                if towns_edges[0][: spur_at + 1] == root_towns
            }
            banned_towns = frozenset(root_towns[:-1])
            spur = _dijkstra(
                graph,
                costs,
                spur_town,
                dest,
                banned_towns=banned_towns,
                banned_edges=frozenset(banned_edges),
            )
            if spur is None:
                continue
            towns = root_towns + spur[0][1:]
            edges = root_edges + spur[1]
            if edges in seen:
                continue
            seen.add(edges)
            total = float(costs[np.asarray(edges, dtype=np.int64)].sum())
            heapq.heappush(candidates, (total, towns, edges))
        if not candidates:
            break
        total, towns, edges = heapq.heappop(candidates)
        accepted.append((towns, edges, total))
    return accepted


def k_alternative_routes(
    graph: RiskGraph,
    origin: int,
    dest: int,
    alpha: float = DEFAULT_ALPHA,
    k: int = 3,
) -> list[RoutePlan]:
    """Up to ``k`` loopless alternatives, best blended cost first."""
    origin, dest = _validate_pair(graph, origin, dest)
    if not 1 <= k <= MAX_ALTERNATIVES:
        raise RoutingError(
            f"k must be in [1, {MAX_ALTERNATIVES}], got {k}"
        )
    with obs_span("routing.search", mode="alternatives",
                  origin=origin, destination=dest, alpha=alpha, k=k):
        costs = graph.edge_costs(alpha)
        return [
            _plan(graph, towns, edges, cost, alpha)
            for towns, edges, cost in _yen(graph, costs, origin, dest, k)
        ]


def safest_route(
    graph: RiskGraph,
    origin: int,
    dest: int,
    alpha: float = DEFAULT_ALPHA,
    k: int = 3,
) -> SafestResult:
    """Minimum-risk plan among the shortest path and k alternatives.

    The shortest path is always in the candidate set, so
    ``safest.expected_crashes <= shortest.expected_crashes`` holds for
    every pair.  Risk ties break toward shorter, then lexicographically
    earlier, routes.
    """
    origin, dest = _validate_pair(graph, origin, dest)
    if not 1 <= k <= MAX_ALTERNATIVES:
        raise RoutingError(
            f"k must be in [1, {MAX_ALTERNATIVES}], got {k}"
        )
    with obs_span("routing.search", mode="safest",
                  origin=origin, destination=dest, alpha=alpha, k=k):
        short_towns, short_edges, short_cost = _search(
            graph, origin, dest, 0.0
        )
        shortest = _plan(graph, short_towns, short_edges, short_cost, 0.0)
        costs = graph.edge_costs(alpha)
        alternatives = tuple(
            _plan(graph, towns, edges, cost, alpha)
            for towns, edges, cost in _yen(graph, costs, origin, dest, k)
        )
        safest = min(
            (shortest, *alternatives),
            key=lambda p: (p.expected_crashes, p.length_km, p.towns),
        )
        return SafestResult(
            shortest=shortest, safest=safest, alternatives=alternatives
        )


def score_town_path(
    graph: RiskGraph, town_ids: list[int], alpha: float = DEFAULT_ALPHA
) -> RoutePlan:
    """Risk breakdown for an explicit town sequence.

    Consecutive towns must be directly connected; parallel edges
    resolve to the lowest ``(length, edge id)`` — deterministic.
    """
    if len(town_ids) < 2:
        raise RoutingError(
            f"a path needs at least 2 towns, got {len(town_ids)}"
        )
    ids = [_town_index(graph, t) for t in town_ids]
    with obs_span("routing.search", mode="path", n_towns=len(ids)):
        costs = graph.edge_costs(alpha)
        edges: list[int] = []
        for u, v in zip(ids, ids[1:]):
            if u == v:
                raise RoutingError(
                    f"path repeats town {graph.town_names[u]!r} "
                    "consecutively"
                )
            adj_towns, adj_edges = graph.neighbours(u)
            linking = [
                int(e) for t, e in zip(adj_towns, adj_edges) if int(t) == v
            ]
            if not linking:
                raise RoutingError(
                    f"towns {graph.town_names[u]!r} and "
                    f"{graph.town_names[v]!r} are not directly connected"
                )
            edges.append(
                min(linking, key=lambda e: (float(graph.edge_length[e]), e))
            )
        edge_ids = np.asarray(edges, dtype=np.int64)
        cost = float(costs[edge_ids].sum())
        return _plan(graph, tuple(ids), tuple(edges), cost, alpha)
