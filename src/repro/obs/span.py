"""Span records: the unit of tracing.

A :class:`Span` is one timed operation — a sweep stage, an HTTP
request, a kernel evaluation — tagged with the trace it belongs to and
the span that caused it.  Spans form trees: every span carries its
trace id plus its parent's span id, so a collection of spans from any
number of threads *and processes* reassembles into one waterfall as
long as the ids were propagated (see
:meth:`repro.obs.trace.Tracer.span` and the ``trace_context`` field of
:class:`~repro.parallel.tasks.SweepTask`).

Design constraints:

* **picklable** — spans ship across the process-pool boundary inside
  :class:`~repro.parallel.tasks.TaskResult`, so they are plain
  dataclasses of primitives;
* **JSON-safe** — :meth:`Span.to_dict` / :meth:`Span.from_dict` are
  the JSON-lines trace-file format (``--trace-out`` /
  ``repro-study trace show``);
* **comparable clocks** — ``start_time`` is wall-clock epoch seconds
  (comparable across forked workers on one host); ``duration`` is a
  ``perf_counter`` delta (monotonic, never negative).

Timings are measurements, not results: the model numbers of a traced
run are bit-identical to an untraced one — spans never touch the data
path or any seeded RNG.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

from repro.exceptions import ObservabilityError

__all__ = ["SpanContext", "Span", "new_trace_id", "new_span_id"]


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a live span.

    This is what crosses boundaries — stored in a ``contextvars``
    variable inside a process, shipped inside ``SweepTask`` across the
    process pool — so child spans can point at their parent without
    holding the parent object.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One finished (or in-flight) timed operation.

    ``status`` is ``"ok"`` unless the traced block raised, in which
    case it is ``"error"`` and ``error_type`` names the exception
    class.  ``attrs`` carries small JSON-safe key/values (threshold,
    batch size, backend, ...).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_time: float = 0.0
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    error_type: str | None = None

    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def to_dict(self) -> dict:
        """JSON-safe representation (one trace-file line)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "attrs": self.attrs,
            "status": self.status,
            "error_type": self.error_type,
        }

    @classmethod
    def from_dict(cls, data: object) -> "Span":
        """Rebuild a span from :meth:`to_dict` output.

        Raises :class:`ObservabilityError` for payloads that do not
        carry the required fields with sensible types.
        """
        if not isinstance(data, dict):
            raise ObservabilityError(
                f"span payload must be an object, got {type(data).__name__}"
            )
        try:
            span = cls(
                name=str(data["name"]),
                trace_id=str(data["trace_id"]),
                span_id=str(data["span_id"]),
                parent_id=(
                    None
                    if data.get("parent_id") is None
                    else str(data["parent_id"])
                ),
                start_time=float(data.get("start_time", 0.0)),
                duration=float(data.get("duration", 0.0)),
                attrs=dict(data.get("attrs") or {}),
                status=str(data.get("status", "ok")),
                error_type=(
                    None
                    if data.get("error_type") is None
                    else str(data["error_type"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed span payload: {exc}"
            ) from exc
        return span
