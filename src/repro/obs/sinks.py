"""Span sinks and trace-file IO.

:class:`JsonlSpanSink` is the write side of ``--trace-out``: one JSON
object per finished span, one span per line, flushed per line so a
killed process loses at most the span being written.
:func:`read_spans` is the read side used by ``repro-study trace show``.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

from repro.exceptions import ObservabilityError
from repro.obs.span import Span

__all__ = ["JsonlSpanSink", "read_spans"]


class JsonlSpanSink:
    """Callable sink appending one JSON line per span.

    ``target`` is a path (appended to) or ``"-"`` for stdout.  The
    sink is thread-safe: serving handler threads and the study's
    collection path may finish spans concurrently.
    """

    def __init__(self, target: str | Path):
        self._lock = threading.Lock()
        self.n_spans = 0
        if str(target) == "-":
            self._handle = sys.stdout
            self._owns_handle = False
        else:
            self._handle = open(  # repro: ignore[REP005] -- the sink outlives any 'with' scope (spans stream in for the process lifetime); close() is the explicit finalizer and the CLI calls it
                target, "a", encoding="utf-8"
            )
            self._owns_handle = True
        self.path = str(target)

    def __call__(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.n_spans += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_handle:
                self._handle.close()
                self._owns_handle = False

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spans(path: str | Path) -> list[Span]:
    """Parse a JSON-lines trace file back into spans.

    Raises :class:`ObservabilityError` naming the offending line for
    anything that is not valid span JSON — a truncated final line from
    a killed writer is the one tolerated corruption (it is skipped).
    """
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn final write from a killed process
            raise ObservabilityError(
                f"{path}:{lineno}: not valid span JSON: {exc}"
            ) from exc
        try:
            spans.append(Span.from_dict(payload))
        except ObservabilityError as exc:
            raise ObservabilityError(f"{path}:{lineno}: {exc}") from exc
    return spans
