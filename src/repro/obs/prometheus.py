"""Prometheus text-format exposition of the serving metrics.

Renders :class:`~repro.serving.metrics.RequestMetrics` snapshots and
per-engine counters as Prometheus exposition format 0.0.4 (the plain
text a ``/metrics`` scrape expects): request counters and error
counters with ``endpoint`` / ``error_type`` labels, a latency
histogram per endpoint over the metrics layer's fixed bucket bounds,
and engine/cache gauges.  The JSON ``GET /metrics`` stays the
human-and-test-facing view; ``GET /metrics?format=prometheus`` serves
this one.

:func:`validate_exposition` is the matching checker (used by the
golden-format test and the CI smoke step): line grammar, TYPE-before-
samples, cumulative bucket monotonicity and the ``+Inf``/``_count``
agreement histograms require.
"""

from __future__ import annotations

import math
import re

from repro.exceptions import ObservabilityError

__all__ = ["render_prometheus", "validate_exposition", "CONTENT_TYPE"]

#: The scrape Content-Type for exposition format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float | int) -> str:
    """Deterministic sample formatting: ints bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _fmt(bound)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: dict[str, str], value: float | int
    ) -> None:
        if labels:
            body = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


#: engine.stats() keys exposed as counters (monotonic over the engine's
#: lifetime) vs gauges.
_ENGINE_COUNTERS = (
    ("rows_scored", "repro_engine_rows_scored_total",
     "Rows scored by the engine (all paths)."),
    ("batches", "repro_engine_batches_total",
     "Micro-batches executed by the engine worker."),
    ("cache_hits", "repro_engine_cache_hits_total",
     "LRU result-cache hits."),
    ("cache_misses", "repro_engine_cache_misses_total",
     "LRU result-cache misses."),
    ("bulk_batches", "repro_engine_bulk_batches_total",
     "Batch requests scored on the sharded bulk path."),
    ("bulk_rows", "repro_engine_bulk_rows_total",
     "Rows scored on the sharded bulk path."),
)

_ENGINE_GAUGES = (
    ("cache_size", "repro_engine_cache_size",
     "Rows currently held by the LRU result cache."),
    ("max_batch_observed", "repro_engine_max_batch_observed",
     "Largest micro-batch executed so far."),
)


def render_prometheus(
    endpoints: dict[str, dict],
    engines: dict[str, dict] | None = None,
    uptime_seconds: float | None = None,
    n_models: int | None = None,
    registry: dict | None = None,
    routing: dict | None = None,
    windows: dict[str, dict] | None = None,
    slo: dict | None = None,
    build: dict | None = None,
    profile: dict | None = None,
) -> str:
    """Exposition text from a metrics snapshot.

    ``endpoints`` is :meth:`RequestMetrics.prometheus_snapshot` output
    (per-endpoint count / sum / errors / error_types / cumulative
    buckets); ``engines`` maps model name → ``ScoringEngine.stats()``;
    ``registry`` is :meth:`ScorerRegistry.stats()` (load/refresh
    counters plus typed reload-failure counters); ``routing`` is
    :meth:`RoutePlanner.stats()` (graph builds, plan counters, route
    store hit/miss/invalidation); ``windows`` is
    :meth:`RequestMetrics.windowed_summary` (endpoint → window →
    rolling summary); ``slo`` is
    :meth:`~repro.obs.burnrate.SLOBurnEngine.snapshot`; ``build`` is
    the build-identity label set (version / python / numpy /
    native_kernel); ``profile`` is
    :meth:`~repro.obs.profile.SamplingProfiler.stats`.  Output
    ordering is fully deterministic (sorted label values), which the
    golden-format test relies on.
    """
    w = _Writer()
    if build is not None:
        w.family("repro_build_info", "gauge",
                 "Build identity; always 1, labels carry the facts.")
        w.sample(
            "repro_build_info",
            {key: str(build[key]) for key in sorted(build)},
            1,
        )
    if uptime_seconds is not None:
        w.family("repro_uptime_seconds", "gauge",
                 "Seconds since the service started.")
        w.sample("repro_uptime_seconds", {}, uptime_seconds)
    if n_models is not None:
        w.family("repro_models", "gauge",
                 "Registered scorer artefacts.")
        w.sample("repro_models", {}, n_models)

    names = sorted(endpoints)
    w.family("repro_requests_total", "counter",
             "Requests handled per endpoint.")
    for name in names:
        w.sample(
            "repro_requests_total",
            {"endpoint": name},
            endpoints[name]["count"],
        )
    w.family("repro_request_errors_total", "counter",
             "Request errors per endpoint and error type.")
    for name in names:
        error_types = endpoints[name]["error_types"]
        for error_type in sorted(error_types):
            w.sample(
                "repro_request_errors_total",
                {"endpoint": name, "error_type": error_type},
                error_types[error_type],
            )
    w.family("repro_request_duration_seconds", "histogram",
             "Request latency per endpoint.")
    for name in names:
        record = endpoints[name]
        for bound, cumulative in record["buckets"]:
            w.sample(
                "repro_request_duration_seconds_bucket",
                {"endpoint": name, "le": _fmt_bound(bound)},
                cumulative,
            )
        w.sample(
            "repro_request_duration_seconds_bucket",
            {"endpoint": name, "le": "+Inf"},
            record["count"],
        )
        w.sample(
            "repro_request_duration_seconds_sum",
            {"endpoint": name},
            record["sum_seconds"],
        )
        w.sample(
            "repro_request_duration_seconds_count",
            {"endpoint": name},
            record["count"],
        )

    for stat_key, metric, help_text in _ENGINE_COUNTERS:
        w.family(metric, "counter", help_text)
        for model in sorted(engines or {}):
            w.sample(metric, {"model": model}, (engines or {})[model][stat_key])
    for stat_key, metric, help_text in _ENGINE_GAUGES:
        w.family(metric, "gauge", help_text)
        for model in sorted(engines or {}):
            w.sample(metric, {"model": model}, (engines or {})[model][stat_key])

    if registry is not None:
        w.family("repro_registry_loads_total", "counter",
                 "Scorer artefacts (re)loaded from disk.")
        w.sample("repro_registry_loads_total", {}, registry["loads"])
        w.family("repro_registry_refreshes_total", "counter",
                 "Model-directory rescans.")
        w.sample(
            "repro_registry_refreshes_total", {}, registry["refreshes"]
        )
        w.family("repro_registry_reload_errors_total", "counter",
                 "Failed hot reloads by model and error type "
                 "(last-good scorer kept serving).")
        for key in sorted(registry["reload_errors"]):
            model, _, error_type = key.partition("/")
            w.sample(
                "repro_registry_reload_errors_total",
                {"model": model, "error_type": error_type},
                registry["reload_errors"][key],
            )
        w.family("repro_registry_degraded_models", "gauge",
                 "Models currently serving a last-good version because "
                 "their backing file is bad.")
        w.sample(
            "repro_registry_degraded_models",
            {},
            len(registry["degraded"]),
        )

    if routing is not None:
        store = routing["store"]
        w.family("repro_route_graph_builds_total", "counter",
                 "Risk graphs built (one per scorer artefact version).")
        w.sample("repro_route_graph_builds_total", {},
                 routing["graph_builds"])
        w.family("repro_route_plans_total", "counter",
                 "Route plans answered, by query kind.")
        for kind in sorted(routing["plans"]):
            w.sample(
                "repro_route_plans_total",
                {"kind": kind},
                routing["plans"][kind],
            )
        w.family("repro_route_store_hits_total", "counter",
                 "Route store cache hits.")
        w.sample("repro_route_store_hits_total", {}, store["hits"])
        w.family("repro_route_store_misses_total", "counter",
                 "Route store cache misses.")
        w.sample("repro_route_store_misses_total", {}, store["misses"])
        w.family("repro_route_store_invalidations_total", "counter",
                 "Route store entries purged by artefact hot reloads.")
        w.sample(
            "repro_route_store_invalidations_total",
            {},
            store["invalidations"],
        )
        w.family("repro_route_store_entries", "gauge",
                 "Route responses currently cached.")
        w.sample("repro_route_store_entries", {}, store["entries"])
        w.family("repro_route_graphs_cached", "gauge",
                 "Risk graphs currently held in the planner LRU.")
        w.sample("repro_route_graphs_cached", {},
                 routing["graphs_cached"])
        w.family("repro_route_hotspot_clusters", "gauge",
                 "Spatial k-means hotspot clusters on the network.")
        w.sample("repro_route_hotspot_clusters", {}, routing["clusters"])

    if windows:
        _render_windows(w, windows)
    if slo is not None:
        _render_slo(w, slo)
    if profile is not None:
        _render_profile(w, profile)
    return w.text()


def _render_windows(w: _Writer, windows: dict[str, dict]) -> None:
    """Rolling-window gauges: one sample per (endpoint, window)."""
    w.family("repro_window_requests", "gauge",
             "Requests observed inside the rolling window.")
    for endpoint in sorted(windows):
        for window in sorted(windows[endpoint]):
            w.sample(
                "repro_window_requests",
                {"endpoint": endpoint, "window": window},
                windows[endpoint][window]["count"],
            )
    w.family("repro_window_request_rate", "gauge",
             "Requests per second averaged over the rolling window.")
    for endpoint in sorted(windows):
        for window in sorted(windows[endpoint]):
            w.sample(
                "repro_window_request_rate",
                {"endpoint": endpoint, "window": window},
                windows[endpoint][window]["rate"],
            )
    w.family("repro_window_error_rate", "gauge",
             "Error fraction inside the rolling window (0 when idle).")
    for endpoint in sorted(windows):
        for window in sorted(windows[endpoint]):
            w.sample(
                "repro_window_error_rate",
                {"endpoint": endpoint, "window": window},
                windows[endpoint][window]["error_rate"],
            )
    w.family("repro_window_p95_seconds", "gauge",
             "p95 latency estimate over the rolling window "
             "(absent while the window is empty).")
    for endpoint in sorted(windows):
        for window in sorted(windows[endpoint]):
            p95 = windows[endpoint][window]["p95"]
            if p95 is not None:
                w.sample(
                    "repro_window_p95_seconds",
                    {"endpoint": endpoint, "window": window},
                    p95,
                )


def _render_slo(w: _Writer, slo: dict) -> None:
    """Burn-rate gauges from an ``SLOBurnEngine.snapshot()``."""
    rules = slo.get("rules", [])
    w.family("repro_slo_burn_rate", "gauge",
             "Error-budget burn rate (1.0 = spending exactly the "
             "budget) per SLO rule, endpoint and window.")
    for record in rules:
        base = {
            "slo": record["slo"],
            "rule": record["rule"],
            "endpoint": record["endpoint"],
        }
        w.sample(
            "repro_slo_burn_rate",
            {**base, "window": "fast"},
            record["fast_burn_rate"],
        )
        w.sample(
            "repro_slo_burn_rate",
            {**base, "window": "slow"},
            record["slow_burn_rate"],
        )
    w.family("repro_slo_budget_remaining", "gauge",
             "Fraction of the slow-window error budget still unspent.")
    for record in rules:
        w.sample(
            "repro_slo_budget_remaining",
            {
                "slo": record["slo"],
                "rule": record["rule"],
                "endpoint": record["endpoint"],
            },
            record["budget_remaining"],
        )


def _render_profile(w: _Writer, profile: dict) -> None:
    """Sampler health from ``SamplingProfiler.stats()``."""
    w.family("repro_profile_samples_total", "counter",
             "Stack samples taken by the continuous profiler.")
    w.sample("repro_profile_samples_total", {}, profile["samples"])
    w.family("repro_profile_dropped_stacks_total", "counter",
             "Samples dropped because the distinct-stack cap was hit.")
    w.sample(
        "repro_profile_dropped_stacks_total",
        {},
        profile["dropped_stacks"],
    )
    w.family("repro_profile_distinct_stacks", "gauge",
             "Distinct folded stacks currently held by the profiler.")
    w.sample(
        "repro_profile_distinct_stacks", {}, profile["distinct_stacks"]
    )


# -- validation (golden tests + CI smoke) ------------------------------------

_COMMENT_RE = re.compile(
    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$"
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$"
)
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise ObservabilityError(
            f"invalid sample value {text!r}"
        ) from exc


def validate_exposition(text: str) -> int:
    """Check exposition text; returns the number of samples.

    Enforces the grammar this module emits and the histogram
    invariants a scraper depends on: every sample's family has a
    preceding ``# TYPE``; histogram bucket series are cumulative,
    non-decreasing, end with ``le="+Inf"``; and the ``+Inf`` bucket
    equals the family's ``_count``.  Raises
    :class:`ObservabilityError` with the offending line on violation.
    """
    typed: dict[str, str] = {}
    n_samples = 0
    histogram_state: dict[tuple[str, str], float] = {}
    inf_seen: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], float] = {}
    if text and not text.endswith("\n"):
        raise ObservabilityError("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if match is None:
                raise ObservabilityError(
                    f"line {lineno}: malformed comment: {line!r}"
                )
            if match.group(1) == "TYPE":
                name = line.split(" ", 3)[2]
                typed[name] = line.rsplit(" ", 1)[1]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(
                f"line {lineno}: malformed sample: {line!r}"
            )
        name = match.group("name")
        labels_text = match.group("labels")
        labels: dict[str, str] = {}
        if labels_text:
            for part in labels_text.split(","):
                if not _LABEL_RE.match(part):
                    raise ObservabilityError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                key, _, raw = part.partition("=")
                labels[key] = raw[1:-1]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and typed.get(base) == "histogram":
                family = base
                break
        if family not in typed:
            raise ObservabilityError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        value = _parse_value(match.group("value"))
        n_samples += 1
        if typed.get(family) == "histogram":
            series = (
                family,
                ",".join(
                    f"{k}={v}"
                    for k, v in sorted(labels.items())
                    if k != "le"
                ),
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ObservabilityError(
                        f"line {lineno}: histogram bucket without 'le'"
                    )
                previous = histogram_state.get(series)
                if previous is not None and value < previous:
                    raise ObservabilityError(
                        f"line {lineno}: bucket series {series[0]} not "
                        f"cumulative ({value} < {previous})"
                    )
                histogram_state[series] = value
                if labels["le"] == "+Inf":
                    inf_seen[series] = value
            elif name.endswith("_count"):
                counts[series] = value
    for series, count in counts.items():
        if series not in inf_seen:
            raise ObservabilityError(
                f"histogram {series[0]} has _count but no le=\"+Inf\" bucket"
            )
        if inf_seen[series] != count:
            raise ObservabilityError(
                f"histogram {series[0]}: +Inf bucket {inf_seen[series]} "
                f"!= _count {count}"
            )
    return n_samples
