"""Structured JSON access log for the scoring service.

One JSON object per completed HTTP request (``serve --access-log``):
timestamp, method, path, status, response bytes, wall duration in
milliseconds, milliseconds spent in the engine's micro-batch queue
(null for requests that never queued), the request's trace id (joins
a log line to its span tree in the ``--trace-out`` file), and the
error type when the request failed.  Lines are newline-delimited JSON
flushed per write, so ``tail -f | jq`` works on a live server and a
killed process loses at most one line.
"""

from __future__ import annotations

import json
import sys
import threading
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["AccessLog"]


class AccessLog:
    """Thread-safe JSON-lines request log.

    ``target`` is a path (appended to) or ``"-"`` for stdout.  One
    handler thread per connection writes here, hence the lock; the
    write itself is a single line + flush, so the lock is held only
    around buffered file-object calls (no blocking network I/O).
    """

    def __init__(self, target: str | Path):
        self._lock = threading.Lock()
        self.n_lines = 0
        if str(target) == "-":
            self._handle = sys.stdout
            self._owns_handle = False
        else:
            self._handle = open(  # repro: ignore[REP005] -- the log outlives any 'with' scope (it spans the server's lifetime); close() is the explicit finalizer, called from ScoringService.close()
                target, "a", encoding="utf-8"
            )
            self._owns_handle = True
        self.path = str(target)

    def write(
        self,
        method: str,
        path: str,
        status: int,
        n_bytes: int,
        duration_ms: float,
        trace_id: str | None = None,
        error_type: str | None = None,
        queue_wait_ms: float | None = None,
    ) -> None:
        record = {
            "ts": datetime.now(timezone.utc).isoformat(),
            "method": method,
            "path": path,
            "status": status,
            "response_bytes": n_bytes,
            "duration_ms": round(duration_ms, 3),
            "queue_wait_ms": (
                round(queue_wait_ms, 3) if queue_wait_ms is not None else None
            ),
            "trace_id": trace_id,
            "error_type": error_type,
        }
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.n_lines += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_handle:
                self._handle.close()
                self._owns_handle = False

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
