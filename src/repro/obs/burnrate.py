"""SLO burn-rate engine — rolling error-budget accounting per endpoint.

A load test evaluates :class:`~repro.loadtest.slo.SLOSpec` thresholds
*after* the run; a live server wants to know **while serving** how fast
each SLO's error budget is being consumed.  This module reuses the very
same JSON specs (``benchmarks/slo/*.json``) and re-reads each
event-classifiable rule as an availability objective in the SRE
burn-rate formulation:

    burn_rate = (bad events / total events in window) / error budget

A burn rate of 1.0 means the budget is being spent exactly as fast as
the SLO allows; 10 means ten times too fast.  Two windows per tracked
rule — **fast** (last minute, pages quickly on incidents) and **slow**
(last hour, catches smoulder) — follow the standard multi-window
multi-burn-rate alerting shape.

Rule keys map to (event classifier, budget) as follows:

``max_error_rate L``
    bad = request errored; budget = ``L`` floored at
    :data:`BUDGET_FLOOR` — a zero-error SLO would otherwise make every
    burn rate infinite, so "0.0" is read as "at most one bad request
    per thousand" for burn accounting (the after-the-run gate still
    enforces the literal zero).
``max_p99_ms L``
    bad = request errored or slower than ``L`` ms; budget = 1% (the
    p99 objective tolerates 1% of requests over the limit).
``max_p95_ms L``
    same classifier; budget = 5%.
``max_p50_ms L``
    same classifier; budget = 50%.

``max_mean_ms`` and ``min_throughput_rps`` have no per-event
good/bad reading, so they stay load-test-gate-only and are skipped
here (visible as ``skipped_rules`` in :meth:`SLOBurnEngine.snapshot`).

Budget remaining is accounted over the slow window:
``1 - slow_burn_rate`` clamped to [0, 1], i.e. the fraction of the
hourly budget still unspent — 1.0 when idle.
"""

from __future__ import annotations

import time
from fnmatch import fnmatchcase
from pathlib import Path
from threading import Lock
from typing import Callable, Iterable

from repro.loadtest.slo import SLORule, SLOSpec
from repro.obs.window import CountRing

__all__ = ["SLOBurnEngine", "BUDGET_FLOOR", "FAST_WINDOW", "SLOW_WINDOW"]

#: Minimum error budget used for burn-rate math.  Keeps a literal
#: ``max_error_rate: 0.0`` rule finite (see module docstring).
BUDGET_FLOOR = 0.001

#: Fast burn window: 60 buckets × 1 s = the last minute.
FAST_WINDOW = (1.0, 60)

#: Slow burn window: 60 buckets × 60 s = the last hour.
SLOW_WINDOW = (60.0, 60)

#: Latency rule key → tolerated fraction of slow requests (its budget).
_LATENCY_BUDGETS = {
    "max_p50_ms": 0.50,
    "max_p95_ms": 0.05,
    "max_p99_ms": 0.01,
}


class _Tracker:
    """Fast+slow rolling counts for one (spec, rule key, endpoint)."""

    __slots__ = (
        "slo", "rule", "pattern", "endpoint", "budget",
        "threshold_seconds", "fast", "slow",
    )

    def __init__(
        self,
        slo: str,
        rule: str,
        pattern: str,
        endpoint: str,
        budget: float,
        threshold_seconds: float | None,
        clock: Callable[[], float],
    ):
        self.slo = slo
        self.rule = rule
        self.pattern = pattern
        self.endpoint = endpoint
        self.budget = budget
        self.threshold_seconds = threshold_seconds
        self.fast = CountRing(*FAST_WINDOW, clock=clock)
        self.slow = CountRing(*SLOW_WINDOW, clock=clock)

    def observe(self, seconds: float, error: bool) -> None:
        bad = error or (
            self.threshold_seconds is not None
            and seconds > self.threshold_seconds
        )
        self.fast.observe(bad)
        self.slow.observe(bad)

    @staticmethod
    def _burn(ring: CountRing, budget: float) -> float:
        total, bad = ring.counts()
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def snapshot(self) -> dict:
        fast_total, fast_bad = self.fast.counts()
        slow_total, slow_bad = self.slow.counts()
        fast_burn = (fast_bad / fast_total) / self.budget if fast_total else 0.0
        slow_burn = (slow_bad / slow_total) / self.budget if slow_total else 0.0
        return {
            "slo": self.slo,
            "rule": self.rule,
            "pattern": self.pattern,
            "endpoint": self.endpoint,
            "budget": self.budget,
            "fast_burn_rate": fast_burn,
            "slow_burn_rate": slow_burn,
            "budget_remaining": max(0.0, min(1.0, 1.0 - slow_burn)),
            "fast": {"total": fast_total, "bad": fast_bad},
            "slow": {"total": slow_total, "bad": slow_bad},
        }


class _RuleTemplate:
    """One burnable threshold from a spec, before endpoint binding."""

    __slots__ = ("slo", "rule", "pattern", "budget", "threshold_seconds")

    def __init__(
        self,
        slo: str,
        rule: str,
        pattern: str,
        budget: float,
        threshold_seconds: float | None,
    ):
        self.slo = slo
        self.rule = rule
        self.pattern = pattern
        self.budget = budget
        self.threshold_seconds = threshold_seconds


def _templates_from_rule(slo: str, rule: SLORule) -> Iterable[_RuleTemplate]:
    for key, limit in rule.limits:
        if key == "max_error_rate":
            yield _RuleTemplate(
                slo=slo,
                rule=key,
                pattern=rule.endpoint,
                budget=max(limit, BUDGET_FLOOR),
                threshold_seconds=None,
            )
        elif key in _LATENCY_BUDGETS:
            yield _RuleTemplate(
                slo=slo,
                rule=key,
                pattern=rule.endpoint,
                budget=_LATENCY_BUDGETS[key],
                threshold_seconds=limit / 1000.0,
            )
        # max_mean_ms / min_throughput_rps: no per-event reading.


class SLOBurnEngine:
    """Live burn-rate accounting for one or more SLO specs.

    Feed it every request (:meth:`observe`); read gauges out of
    :meth:`snapshot`.  Endpoint labels are fixed-cardinality by
    construction (the serving layer normalises them before calling in),
    so the tracker map is bounded by
    ``len(burnable rules) × len(endpoint labels)``.
    """

    def __init__(
        self,
        specs: Iterable[SLOSpec],
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self._templates: list[_RuleTemplate] = []
        self._skipped: list[dict] = []
        self.spec_names: list[str] = []
        for spec in specs:
            self.spec_names.append(spec.name)
            for rule in spec.rules:
                burnable = list(_templates_from_rule(spec.name, rule))
                self._templates.extend(burnable)
                burnable_keys = {t.rule for t in burnable}
                for key, _ in rule.limits:
                    if key not in burnable_keys:
                        self._skipped.append(
                            {
                                "slo": spec.name,
                                "rule": key,
                                "pattern": rule.endpoint,
                            }
                        )
        self._lock = Lock()
        self._trackers: dict[tuple[str, str, str, str], _Tracker] = {}
        self._by_endpoint: dict[str, tuple[_Tracker, ...]] = {}

    @classmethod
    def from_paths(
        cls,
        paths: Iterable[str | Path],
        clock: Callable[[], float] = time.monotonic,
    ) -> "SLOBurnEngine":
        return cls([SLOSpec.load(p) for p in paths], clock=clock)

    def _trackers_for(self, endpoint: str) -> tuple[_Tracker, ...]:
        with self._lock:
            trackers = self._by_endpoint.get(endpoint)
            if trackers is None:
                bound = []
                for template in self._templates:
                    if fnmatchcase(endpoint, template.pattern):
                        key = (
                            template.slo, template.rule,
                            template.pattern, endpoint,
                        )
                        tracker = self._trackers.get(key)
                        if tracker is None:
                            tracker = self._trackers[key] = _Tracker(
                                slo=template.slo,
                                rule=template.rule,
                                pattern=template.pattern,
                                endpoint=endpoint,
                                budget=template.budget,
                                threshold_seconds=template.threshold_seconds,
                                clock=self._clock,
                            )
                        bound.append(tracker)
                trackers = self._by_endpoint[endpoint] = tuple(bound)
            return trackers

    def observe(
        self, endpoint: str, seconds: float, error: bool = False
    ) -> None:
        """Account one request against every rule matching ``endpoint``."""
        for tracker in self._trackers_for(endpoint):
            tracker.observe(seconds, error)

    def snapshot(self) -> dict:
        """The burn state as one JSON-ready dict (stable ordering)."""
        with self._lock:
            trackers = sorted(
                self._trackers.values(),
                key=lambda t: (t.slo, t.rule, t.endpoint),
            )
        return {
            "specs": list(self.spec_names),
            "rules": [t.snapshot() for t in trackers],
            "skipped_rules": list(self._skipped),
        }
