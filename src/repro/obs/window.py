"""Fixed-width ring-of-buckets time windows — bounded rolling telemetry.

Cumulative counters answer "how many ever"; a live operator needs "how
many over the last minute".  This module provides that second view
without unbounded memory: a :class:`BucketRing` is ``n_buckets``
fixed-width buckets addressed by ``epoch = int(now / width)``.  Writing
rotates lazily — a bucket whose stored epoch is stale is reset before
reuse — so idle gaps of any length cost nothing and never leak old
samples into a fresh window (the skew/gap behaviour the rotation tests
pin).

Two ring flavours share the rotation logic:

* :class:`BucketRing` — full request telemetry per bucket: count,
  errors, a fixed latency histogram over
  :data:`~repro.serving.metrics.BUCKET_BOUNDS`-style bounds (p50/p95/
  p99 estimates come from the merged histogram, exact max from the
  tracked maximum), and the slowest request's trace id so a windowed
  outlier joins straight to its span waterfall.
* :class:`CountRing` — just total/bad counts; the burn-rate engine's
  substrate (:mod:`repro.obs.burnrate`).

All clocks are injected (``clock`` defaults to ``time.monotonic``), so
tests drive rotation deterministically.  Summaries are NaN-free by
construction: an empty window reports zero rates and ``None``
percentiles, never NaN — these dicts go straight into ``/metrics``
JSON, which has no NaN.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = [
    "BucketRing",
    "CountRing",
    "WindowedMetrics",
    "WINDOW_LAYOUT",
]

#: The standard window layout: name → (bucket width seconds, buckets).
#: 60×1s answers "last minute" at second resolution, 60×5s "last five
#: minutes", 60×60s "last hour" — three rings, constant memory.
WINDOW_LAYOUT: tuple[tuple[str, float, int], ...] = (
    ("1m", 1.0, 60),
    ("5m", 5.0, 60),
    ("1h", 60.0, 60),
)


class _Bucket:
    """One time slice of a :class:`BucketRing` (owner-locked access)."""

    __slots__ = (
        "epoch", "count", "errors", "histogram", "max_seconds",
        "slowest_trace_id",
    )

    def __init__(self, n_bounds: int):
        self.epoch = -1
        self.count = 0
        self.errors = 0
        self.histogram = [0] * (n_bounds + 1)  # [+Inf last]
        self.max_seconds = 0.0
        self.slowest_trace_id: str | None = None

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.errors = 0
        for i in range(len(self.histogram)):
            self.histogram[i] = 0
        self.max_seconds = 0.0
        self.slowest_trace_id = None


class BucketRing:
    """Rolling request telemetry over ``n_buckets`` × ``width`` seconds.

    Thread-safe; every observation and summary costs O(buckets) at
    worst and allocates nothing on the write path.  ``bounds`` are the
    histogram's upper bucket bounds in seconds (the metrics layer
    passes its Prometheus bounds so windowed and cumulative percentiles
    are estimated over the same grid).
    """

    def __init__(
        self,
        width_seconds: float,
        n_buckets: int,
        bounds: tuple[float, ...],
        clock: Callable[[], float] = time.monotonic,
    ):
        if width_seconds <= 0:
            raise ConfigurationError(
                f"width_seconds must be > 0, got {width_seconds}"
            )
        if n_buckets < 2:
            raise ConfigurationError(
                f"n_buckets must be >= 2, got {n_buckets}"
            )
        self.width = width_seconds
        self.n_buckets = n_buckets
        self.bounds = tuple(bounds)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = [_Bucket(len(self.bounds)) for _ in range(n_buckets)]

    @property
    def span_seconds(self) -> float:
        return self.width * self.n_buckets

    def _bucket_for(self, epoch: int) -> _Bucket:
        bucket = self._buckets[epoch % self.n_buckets]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def observe(
        self,
        seconds: float,
        error: bool = False,
        trace_id: str | None = None,
    ) -> None:
        now = self._clock()
        with self._lock:
            bucket = self._bucket_for(int(now / self.width))
            bucket.count += 1
            if error:
                bucket.errors += 1
            for i, bound in enumerate(self.bounds):
                if seconds <= bound:
                    bucket.histogram[i] += 1
                    break
            else:
                bucket.histogram[-1] += 1
            if seconds >= bucket.max_seconds:
                bucket.max_seconds = seconds
                if trace_id is not None:
                    bucket.slowest_trace_id = trace_id

    def _live_buckets(self, now: float) -> list[_Bucket]:
        newest = int(now / self.width)
        oldest = newest - self.n_buckets + 1
        return [b for b in self._buckets if oldest <= b.epoch <= newest]

    def _percentile_estimate(
        self, histogram: list[int], total: int, q: float, max_seconds: float
    ) -> float | None:
        """Upper-bound estimate from the merged histogram (None when
        empty), clamped to the window's exact maximum so a percentile
        never reads above ``max``.  The +Inf bucket reports the exact
        maximum directly."""
        if total == 0:
            return None
        rank = max(1, math.ceil(q / 100.0 * total))
        cumulative = 0
        for i, n in enumerate(histogram):
            cumulative += n
            if cumulative >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], max_seconds)
                return max_seconds
        return max_seconds  # unreachable; histogram sums to total

    def summary(self) -> dict:
        """The window folded into one NaN-free dict.

        ``rate`` divides by the full window span, so a burst reads as
        its true per-second rate over the window rather than spiking on
        partial data.  ``error_rate`` is 0.0 (not NaN) when the window
        is empty; percentiles are ``None`` (JSON null) when empty.
        """
        now = self._clock()
        with self._lock:
            live = self._live_buckets(now)
            count = sum(b.count for b in live)
            errors = sum(b.errors for b in live)
            histogram = [0] * (len(self.bounds) + 1)
            max_seconds = 0.0
            slowest_trace_id = None
            for b in live:
                for i, n in enumerate(b.histogram):
                    histogram[i] += n
                if b.count and b.max_seconds >= max_seconds:
                    max_seconds = b.max_seconds
                    slowest_trace_id = b.slowest_trace_id
        return {
            "count": count,
            "errors": errors,
            "rate": count / self.span_seconds,
            "error_rate": (errors / count) if count else 0.0,
            "p50": self._percentile_estimate(histogram, count, 50, max_seconds),
            "p95": self._percentile_estimate(histogram, count, 95, max_seconds),
            "p99": self._percentile_estimate(histogram, count, 99, max_seconds),
            "max": max_seconds if count else None,
            "slowest_trace_id": slowest_trace_id,
        }


class _CountBucket:
    __slots__ = ("epoch", "total", "bad")

    def __init__(self) -> None:
        self.epoch = -1
        self.total = 0
        self.bad = 0


class CountRing:
    """Rolling total/bad event counts (the burn-rate substrate)."""

    def __init__(
        self,
        width_seconds: float,
        n_buckets: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if width_seconds <= 0:
            raise ConfigurationError(
                f"width_seconds must be > 0, got {width_seconds}"
            )
        if n_buckets < 2:
            raise ConfigurationError(
                f"n_buckets must be >= 2, got {n_buckets}"
            )
        self.width = width_seconds
        self.n_buckets = n_buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = [_CountBucket() for _ in range(n_buckets)]

    @property
    def span_seconds(self) -> float:
        return self.width * self.n_buckets

    def observe(self, bad: bool) -> None:
        now = self._clock()
        with self._lock:
            epoch = int(now / self.width)
            bucket = self._buckets[epoch % self.n_buckets]
            if bucket.epoch != epoch:
                bucket.epoch = epoch
                bucket.total = 0
                bucket.bad = 0
            bucket.total += 1
            if bad:
                bucket.bad += 1

    def counts(self) -> tuple[int, int]:
        """(total, bad) events currently inside the window."""
        now = self._clock()
        with self._lock:
            newest = int(now / self.width)
            oldest = newest - self.n_buckets + 1
            total = bad = 0
            for bucket in self._buckets:
                if oldest <= bucket.epoch <= newest:
                    total += bucket.total
                    bad += bucket.bad
            return total, bad


class WindowedMetrics:
    """The standard three-resolution window set for one endpoint.

    A thin bundle of :class:`BucketRing` per :data:`WINDOW_LAYOUT`
    entry; :class:`~repro.serving.metrics.RequestMetrics` keeps one per
    endpoint and fans every observation into all three rings.
    """

    def __init__(
        self,
        bounds: tuple[float, ...],
        clock: Callable[[], float] = time.monotonic,
        layout: tuple[tuple[str, float, int], ...] = WINDOW_LAYOUT,
    ):
        self.rings = {
            name: BucketRing(width, n, bounds, clock=clock)
            for name, width, n in layout
        }

    def observe(
        self,
        seconds: float,
        error: bool = False,
        trace_id: str | None = None,
    ) -> None:
        for ring in self.rings.values():
            ring.observe(seconds, error=error, trace_id=trace_id)

    def summary(self) -> dict[str, dict]:
        return {name: ring.summary() for name, ring in self.rings.items()}
