"""Continuous sampling profiler — folded stacks with span attribution.

A daemon thread wakes ``hz`` times a second, snapshots every Python
thread's stack via ``sys._current_frames()``, and folds each stack into
the collapsed flamegraph form (``frame;frame;frame``, root first) used
by ``flamegraph.pl`` / speedscope.  Counts per distinct folded stack
are the profile; wall-clock attribution follows from sample counts
(each sample ≈ ``1/hz`` seconds of that stack being live).

**Span attribution.**  The profiler installs an
:class:`ActiveSpanRegistry` on a tracer
(:attr:`repro.obs.trace.Tracer.active_registry`); span enter/exit
push/pop span names keyed by thread id.  Each sample then joins the
sampled thread id against the registry, so every folded stack also
carries the sampled thread's active span stack — a profile can be
filtered to "time under ``engine.score_batch``" and per-span self time
falls out of the sample counts.  When no profiler is running the
registry is ``None`` and the tracer hook is a single attribute check —
the same zero-cost-when-disabled pattern the tracer itself uses.

**Bounds.**  Distinct (span leaf, folded stack) keys are capped at
``max_stacks``; samples landing on a new stack beyond the cap are
counted in :attr:`SamplingProfiler.dropped_stacks` rather than grown —
a long-lived server's profile cannot consume unbounded memory and the
loss is explicit, never silent.

Sampling is a measurement layer: it reads frames, never objects, and
touches no RNG — a profiled study is bit-identical to an unprofiled
one (pinned by the golden-table tests).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, ProfilerStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.trace import Tracer

__all__ = ["ActiveSpanRegistry", "SamplingProfiler", "DEFAULT_HZ"]

#: Default sampling rate.  19 Hz is deliberately prime (no lockstep
#: with 10/100 ms periodic work) and cheap: < 5% overhead on the paper
#: study, measured in ``benchmarks/results/profiling.json``.
DEFAULT_HZ = 19

#: Frames kept per sampled stack (root-ward truncation beyond this).
MAX_STACK_DEPTH = 64

#: Default cap on distinct (span, stack) keys held in memory.
DEFAULT_MAX_STACKS = 10_000


class ActiveSpanRegistry:
    """Thread id → stack of active span names, for sample attribution.

    ``push``/``pop`` are called by the span handles of the tracer the
    profiler is attached to, always from the span's own thread;
    :meth:`snapshot` is called by the sampler thread.  A lock guards
    the map — both sides hold it only for a dict/list operation.
    """

    __slots__ = ("_lock", "_stacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stacks: dict[int, list[str]] = {}

    def push(self, name: str) -> None:
        tid = threading.get_ident()
        with self._lock:
            self._stacks.setdefault(tid, []).append(name)

    def pop(self) -> None:
        tid = threading.get_ident()
        with self._lock:
            stack = self._stacks.get(tid)
            if stack:
                stack.pop()
                if not stack:
                    del self._stacks[tid]

    def snapshot(self) -> dict[int, tuple[str, ...]]:
        with self._lock:
            return {
                tid: tuple(stack) for tid, stack in self._stacks.items()
            }


def _fold(frame, limit: int = MAX_STACK_DEPTH) -> str:
    """Collapse a leaf frame's chain into ``root;...;leaf`` form."""
    parts: list[str] = []
    while frame is not None and len(parts) < limit:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Sample all thread stacks at ``hz`` into bounded folded counts.

    Use as a context manager or via :meth:`start`/:meth:`stop`.  Pass
    ``tracer`` to attribute samples to that tracer's active spans (the
    registry is installed on start and removed on stop).
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stacks: int = DEFAULT_MAX_STACKS,
        tracer: "Tracer | None" = None,
    ):
        if hz <= 0:
            raise ConfigurationError(f"hz must be > 0, got {hz}")
        if max_stacks < 1:
            raise ConfigurationError(
                f"max_stacks must be >= 1, got {max_stacks}"
            )
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.registry = ActiveSpanRegistry()
        self._tracer = tracer
        self._interval = 1.0 / float(hz)
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # (active span tuple, folded stack) -> sample count
        self._counts: dict[tuple[tuple[str, ...], str], int] = {}
        self.samples = 0
        self.dropped_stacks = 0
        self._started_at: float | None = None
        self._stopped_at: float | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ProfilerStateError("profiler already started")
        if self._tracer is not None:
            self._tracer.active_registry = self.registry
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        if self._tracer is not None and (
            self._tracer.active_registry is self.registry
        ):
            self._tracer.active_registry = None
        self._stopped_at = time.monotonic()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------
    def _run(self) -> None:
        own_tid = threading.get_ident()
        while not self._stop_event.wait(self._interval):
            self._sample(own_tid)

    def _sample(self, own_tid: int) -> None:
        spans = self.registry.snapshot()
        frames = sys._current_frames()
        # Fold outside the counts lock; only the dict update is guarded.
        folded: list[tuple[tuple[str, ...], str]] = []
        for tid, frame in frames.items():
            if tid == own_tid:
                continue
            folded.append((spans.get(tid, ()), _fold(frame)))
        with self._lock:
            for key in folded:
                self.samples += 1
                count = self._counts.get(key)
                if count is not None:
                    self._counts[key] = count + 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    self.dropped_stacks += 1

    def sample_once(self) -> None:
        """Take one sample synchronously (deterministic tests)."""
        self._sample(threading.get_ident())

    # -- read side ---------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            distinct = len(self._counts)
            samples = self.samples
            dropped = self.dropped_stacks
        if self._started_at is None:
            elapsed = 0.0
        else:
            end = self._stopped_at
            if end is None:
                end = time.monotonic()
            elapsed = end - self._started_at
        return {
            "hz": self.hz,
            "running": self.running,
            "elapsed_seconds": elapsed,
            "samples": samples,
            "distinct_stacks": distinct,
            "dropped_stacks": dropped,
            "max_stacks": self.max_stacks,
        }

    def _snapshot_counts(
        self, span_filter: str | None
    ) -> dict[tuple[tuple[str, ...], str], int]:
        with self._lock:
            items = dict(self._counts)
        if span_filter is None:
            return items
        return {
            key: n for key, n in items.items() if span_filter in key[0]
        }

    def self_time_by_span(self) -> dict[str, int]:
        """Leaf active span → sample count (self time ≈ count / hz).

        Samples are attributed to the innermost span active on the
        sampled thread; threads with no active span land under ``""``.
        """
        out: dict[str, int] = {}
        for (span_stack, _), n in self._snapshot_counts(None).items():
            leaf = span_stack[-1] if span_stack else ""
            out[leaf] = out.get(leaf, 0) + n
        return dict(sorted(out.items()))

    def render_collapsed(self, span_filter: str | None = None) -> str:
        """The profile in collapsed flamegraph form, deterministically
        ordered (descending count, then stack text).

        ``span_filter`` keeps only samples taken while a span with that
        exact name was active on the sampled thread.
        """
        merged: dict[str, int] = {}
        for (_, stack), n in self._snapshot_counts(span_filter).items():
            merged[stack] = merged.get(stack, 0) + n
        lines = [
            f"{stack} {n}"
            for stack, n in sorted(
                merged.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines)

    def to_dict(self, span_filter: str | None = None) -> dict:
        """JSON form: stats + per-stack records + per-span self time."""
        records = [
            {"spans": list(span_stack), "stack": stack, "count": n}
            for (span_stack, stack), n in sorted(
                self._snapshot_counts(span_filter).items(),
                key=lambda kv: (-kv[1], kv[0][1], kv[0][0]),
            )
        ]
        return {
            "stats": self.stats(),
            "span_self_samples": self.self_time_by_span(),
            "stacks": records,
        }
