"""Dependency-free tracing and metrics core shared by every layer.

``repro.obs`` is the observability spine of the reproduction: a
:class:`Tracer` producing nested :class:`Span` trees with
``contextvars`` propagation (and explicit context shipping across the
process-pool boundary), JSON-lines span sinks for ``--trace-out``, a
waterfall renderer for ``repro-study trace show``, Prometheus text
exposition for ``GET /metrics?format=prometheus``, and the structured
JSON access log behind ``serve --access-log``.

The process-wide default tracer is *disabled*: every instrumentation
site in the library (`study`, `executor`, `cache`, `engine`, `bulk`,
`kernel`) costs one attribute check until a CLI flag or service
constructor installs a real tracer.  Tracing is measurement only —
enabling it never changes model outputs.
"""

from repro.obs.accesslog import AccessLog
from repro.obs.burnrate import SLOBurnEngine
from repro.obs.profile import ActiveSpanRegistry, SamplingProfiler
from repro.obs.prometheus import (
    CONTENT_TYPE,
    render_prometheus,
    validate_exposition,
)
from repro.obs.sinks import JsonlSpanSink, read_spans
from repro.obs.window import BucketRing, CountRing, WindowedMetrics
from repro.obs.span import Span, SpanContext, new_span_id, new_trace_id
from repro.obs.trace import (
    Tracer,
    current_context,
    current_tracer,
    get_default_tracer,
    set_default_tracer,
    span,
    use_tracer,
)
from repro.obs.waterfall import group_traces, render_waterfall

__all__ = [
    "AccessLog",
    "ActiveSpanRegistry",
    "BucketRing",
    "CONTENT_TYPE",
    "CountRing",
    "JsonlSpanSink",
    "SLOBurnEngine",
    "SamplingProfiler",
    "Span",
    "SpanContext",
    "Tracer",
    "WindowedMetrics",
    "current_context",
    "current_tracer",
    "get_default_tracer",
    "group_traces",
    "new_span_id",
    "new_trace_id",
    "read_spans",
    "render_prometheus",
    "render_waterfall",
    "set_default_tracer",
    "span",
    "use_tracer",
    "validate_exposition",
]
