"""The tracer: nested spans with ``contextvars`` propagation.

One :class:`Tracer` collects the spans of one observed run — a CLI
study, a serving process — into a bounded in-memory ring plus an
optional per-span sink (e.g. the JSON-lines writer in
:mod:`repro.obs.sinks`).  Instrumentation sites never pass span
objects around; they write one line::

    with trace.span("stage.fit", threshold=8):
        ...

and parenting happens through two context variables:

``current tracer``
    Which tracer is recording in this context.  The process-wide
    default tracer is *disabled*, so instrumented library code costs a
    single attribute check when nobody is tracing; ``use_tracer``
    activates a real tracer for a scope (a CLI run, one HTTP request's
    handler thread, one pool task).
``current span``
    The :class:`~repro.obs.span.SpanContext` new spans parent onto.
    ``Tracer.span`` sets it on entry and restores it on exit, so
    nesting is lexical within a thread and explicit across boundaries
    (pass ``parent=...`` with a shipped context).

Cross-process propagation: the executor captures its current context
into each :class:`~repro.parallel.tasks.SweepTask`; the worker runs the
task under a fresh local tracer whose root span parents onto that
shipped context, and the finished spans travel back inside
``TaskResult`` for :meth:`Tracer.absorb` — one connected tree per
request or study, regardless of backend.

Tracing is a measurement layer: enabling it never changes model
outputs (spans touch no RNG and no data), and a disabled tracer's
``span()`` returns a shared no-op context manager.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterable, Iterator

from repro.obs.span import Span, SpanContext, new_span_id, new_trace_id

__all__ = [
    "Tracer",
    "current_tracer",
    "use_tracer",
    "span",
    "current_context",
    "get_default_tracer",
    "set_default_tracer",
]

#: Default ring-buffer capacity: enough for a full study trace while
#: bounding a long-lived server (older spans are dropped, counted in
#: :attr:`Tracer.dropped`).
DEFAULT_MAX_SPANS = 20_000

_current_tracer: ContextVar["Tracer | None"] = ContextVar(
    "repro_obs_current_tracer", default=None
)
_current_span: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_current_span", default=None
)


class _NullSpanHandle:
    """Shared no-op handle returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span", "_token", "_t0", "_pushed")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start_time = time.time()
        self._token = _current_span.set(self._span.context())
        # Announce the span to an attached profiler registry (None
        # unless a sampling profiler is running — one attribute check).
        registry = self._tracer.active_registry
        self._pushed = registry is not None
        if registry is not None:
            registry.push(self._span.name)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration = time.perf_counter() - self._t0
        if self._pushed:
            registry = self._tracer.active_registry
            if registry is not None:
                registry.pop()
        _current_span.reset(self._token)
        if exc_type is not None:
            self._span.status = "error"
            self._span.error_type = exc_type.__name__
        self._tracer._record(self._span)
        return False


class Tracer:
    """Thread-safe span recorder with a bounded buffer and a sink.

    Parameters
    ----------
    enabled:
        A disabled tracer records nothing and its :meth:`span` is a
        shared no-op — the default process-wide tracer is disabled so
        instrumentation is free until someone opts in.
    sink:
        Optional callable invoked once per finished span (e.g.
        :class:`~repro.obs.sinks.JsonlSpanSink`).  Called outside the
        buffer lock.
    max_spans:
        Ring-buffer capacity; the oldest spans are evicted beyond it
        and counted in :attr:`dropped`.  ``None`` means unbounded
        (tests only — a server must stay bounded).
    """

    def __init__(
        self,
        enabled: bool = True,
        sink: Callable[[Span], None] | None = None,
        max_spans: int | None = DEFAULT_MAX_SPANS,
    ):
        self.enabled = enabled
        self.sink = sink
        self.max_spans = max_spans
        self.dropped = 0
        #: Set by :class:`repro.obs.profile.SamplingProfiler` while it
        #: runs; span enter/exit push/pop names into it so samples can
        #: be attributed to the active span.  None (free) otherwise.
        self.active_registry = None
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max_spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- recording ---------------------------------------------------------
    def span(self, name: str, parent: SpanContext | None = None, **attrs):
        """Context manager for one timed operation.

        The new span parents onto ``parent`` when given (a shipped
        cross-boundary context), else onto the context's current span;
        with neither it becomes the root of a fresh trace.  The block's
        exception (if any) marks the span ``status="error"`` and is
        re-raised untouched.
        """
        if not self.enabled:
            return _NULL_SPAN
        ctx = parent if parent is not None else _current_span.get()
        if ctx is not None:
            trace_id, parent_id = ctx.trace_id, ctx.span_id
        else:
            trace_id, parent_id = new_trace_id(), None
        return _SpanHandle(
            self,
            Span(
                name=name,
                trace_id=trace_id,
                span_id=new_span_id(),
                parent_id=parent_id,
                attrs=attrs,
            ),
        )

    def _record(self, span: Span) -> None:
        sink = self.sink
        with self._lock:
            if (
                self._spans.maxlen is not None
                and len(self._spans) == self._spans.maxlen
            ):
                self.dropped += 1
            self._spans.append(span)
        if sink is not None:
            sink(span)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Adopt spans recorded elsewhere (pool workers) into this
        tracer's buffer and sink — the collection half of the
        cross-process propagation scheme."""
        for span in spans:
            self._record(span)

    # -- read side ---------------------------------------------------------
    def current_context(self) -> SpanContext | None:
        """The context new spans would parent onto (None when idle or
        disabled)."""
        if not self.enabled:
            return None
        return _current_span.get()

    def finished(self) -> list[Span]:
        """Snapshot of the recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return all recorded spans (worker hand-off)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans


_default_tracer = Tracer(enabled=False)


def get_default_tracer() -> Tracer:
    """The process-wide fallback tracer (disabled until replaced)."""
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide fallback tracer; returns the old one."""
    global _default_tracer
    old, _default_tracer = _default_tracer, tracer
    return old


def current_tracer() -> Tracer:
    """The context's active tracer, falling back to the default."""
    tracer = _current_tracer.get()
    return tracer if tracer is not None else _default_tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the context's active tracer for the block."""
    token = _current_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _current_tracer.reset(token)


def span(name: str, parent: SpanContext | None = None, **attrs):
    """``current_tracer().span(...)`` — the one-line instrumentation
    entry point used across the library."""
    return current_tracer().span(name, parent=parent, **attrs)


def current_context() -> SpanContext | None:
    """``current_tracer().current_context()`` for call sites."""
    return current_tracer().current_context()
