"""Per-trace waterfall rendering (``repro-study trace show``).

Reassembles a flat span list into trees (one per trace id) and renders
each as an indented waterfall: name, offset from the trace start,
duration, and a proportional bar.  Spans whose parent never arrived
(dropped by the ring buffer, lost worker) are promoted to roots rather
than hidden, so a partial trace still renders.
"""

from __future__ import annotations

from repro.obs.span import Span

__all__ = ["group_traces", "render_waterfall"]


def group_traces(spans: list[Span]) -> list[list[Span]]:
    """Spans grouped by trace id, traces ordered by earliest start."""
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    groups = list(by_trace.values())
    groups.sort(key=lambda g: min(s.start_time for s in g))
    return groups


def _sorted_children(spans: list[Span]) -> dict[str | None, list[Span]]:
    """parent span id → children ordered by start time (id tiebreak)."""
    ids = {s.span_id for s in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_time, s.span_id))
    return children


def _bar(offset: float, duration: float, total: float, width: int) -> str:
    if total <= 0.0:
        return " " * width
    lead = min(width - 1, int(width * offset / total))
    length = max(1, round(width * duration / total))
    length = min(length, width - lead)
    return " " * lead + "#" * length + " " * (width - lead - length)


def render_waterfall(spans: list[Span], width: int = 32) -> str:
    """Fixed-width text waterfall of every trace in ``spans``."""
    if not spans:
        return "no spans"
    blocks: list[str] = []
    for group in group_traces(spans):
        children = _sorted_children(group)
        t0 = min(s.start_time for s in group)
        total = max(
            max(s.end_time for s in group) - t0,
            max(s.duration for s in group),
        )
        label_width = max(
            len("  " * depth + s.name)
            for depth, s in _walk(children)
        )
        lines = [
            f"trace {group[0].trace_id}  "
            f"({len(group)} span{'s' if len(group) != 1 else ''}, "
            f"{1000 * total:.1f} ms)"
        ]
        for depth, span in _walk(children):
            label = ("  " * depth + span.name).ljust(label_width)
            offset = span.start_time - t0
            mark = f"  ! {span.error_type}" if span.status == "error" else ""
            attrs = _attr_summary(span)
            lines.append(
                f"  {label}  {1000 * offset:8.1f}ms "
                f"{1000 * span.duration:9.2f}ms "
                f"|{_bar(offset, span.duration, total, width)}|"
                f"{attrs}{mark}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _walk(children: dict[str | None, list[Span]]):
    """Depth-first (depth, span) pairs from the promoted roots down."""
    stack = [(0, span) for span in reversed(children.get(None, []))]
    while stack:
        depth, span = stack.pop()
        yield depth, span
        for child in reversed(children.get(span.span_id, [])):
            stack.append((depth + 1, child))


def _attr_summary(span: Span, limit: int = 4) -> str:
    if not span.attrs:
        return ""
    parts = [
        f"{key}={span.attrs[key]}"
        for key in list(span.attrs)[:limit]
    ]
    return "  " + " ".join(parts)
