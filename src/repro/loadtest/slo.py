"""Declarative SLOs evaluated against a load-test report.

An SLO file (JSON natively; YAML when PyYAML happens to be installed)
declares per-endpoint thresholds::

    {
      "name": "smoke",
      "rules": [
        {"endpoint": "POST /v1/score", "max_p99_ms": 250,
         "max_error_rate": 0.0, "min_throughput_rps": 20},
        {"endpoint": "*", "max_error_rate": 0.01}
      ]
    }

``endpoint`` is an ``fnmatch`` pattern over the serving metrics labels
(``POST /v1/score``, ``GET /models``, ...).  A rule that matches no
endpoint in the report is itself a violation — an SLO silently
checking nothing is the regression-gate failure mode this module
exists to prevent.  :meth:`SLOSpec.evaluate` returns the violations;
the CLI turns a non-empty list into exit code 1.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.loadtest.results import LoadTestReport

__all__ = ["SLORule", "SLOSpec", "SLOViolation"]

#: rule key → (report metric, comparison direction).  ``max_*`` keys
#: fail when the observed value exceeds the limit, ``min_*`` when it
#: falls short.
_RULE_KEYS = {
    "max_p50_ms": ("p50_ms", "max"),
    "max_p95_ms": ("p95_ms", "max"),
    "max_p99_ms": ("p99_ms", "max"),
    "max_mean_ms": ("mean_ms", "max"),
    "max_error_rate": ("error_rate", "max"),
    "min_throughput_rps": ("throughput_rps", "min"),
}


@dataclass(frozen=True)
class SLORule:
    """Thresholds for every endpoint matching ``endpoint``."""

    endpoint: str
    limits: tuple[tuple[str, float], ...]

    @classmethod
    def from_dict(cls, data: dict, index: int) -> "SLORule":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"SLO rule #{index} must be an object, got "
                f"{type(data).__name__}"
            )
        endpoint = data.get("endpoint")
        if not isinstance(endpoint, str) or not endpoint:
            raise ConfigurationError(
                f"SLO rule #{index} needs a non-empty 'endpoint' pattern"
            )
        limits = []
        for key, value in data.items():
            if key == "endpoint":
                continue
            if key not in _RULE_KEYS:
                raise ConfigurationError(
                    f"SLO rule #{index} ({endpoint}): unknown key "
                    f"{key!r} (expected one of "
                    f"{', '.join(sorted(_RULE_KEYS))})"
                )
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ConfigurationError(
                    f"SLO rule #{index} ({endpoint}): {key} must be a "
                    f"number, got {value!r}"
                )
            limits.append((key, float(value)))
        if not limits:
            raise ConfigurationError(
                f"SLO rule #{index} ({endpoint}) declares no thresholds"
            )
        return cls(endpoint=endpoint, limits=tuple(limits))


@dataclass(frozen=True)
class SLOViolation:
    """One threshold the measured run failed."""

    endpoint: str
    pattern: str
    key: str
    limit: float
    observed: float

    def describe(self) -> str:
        if self.key == "unmatched":
            return (
                f"SLO rule {self.pattern!r} matched no endpoint in the "
                f"report — nothing was checked"
            )
        direction = "<=" if self.key.startswith("max_") else ">="
        return (
            f"{self.endpoint}: {self.key} violated "
            f"(observed {self.observed:.4g}, required {direction} "
            f"{self.limit:g})"
        )


class SLOSpec:
    """A named list of :class:`SLORule`, loaded from JSON or YAML."""

    def __init__(self, name: str, rules: list[SLORule]):
        if not rules:
            raise ConfigurationError(f"SLO spec {name!r} has no rules")
        self.name = name
        self.rules = list(rules)

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "SLOSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"SLO spec {source} must be a mapping, got "
                f"{type(data).__name__}"
            )
        raw_rules = data.get("rules")
        if not isinstance(raw_rules, list):
            raise ConfigurationError(
                f"SLO spec {source} needs a 'rules' list"
            )
        name = data.get("name", Path(source).stem)
        rules = [
            SLORule.from_dict(rule, i) for i, rule in enumerate(raw_rules)
        ]
        return cls(name=str(name), rules=rules)

    @classmethod
    def load(cls, path: str | Path) -> "SLOSpec":
        """Read a spec file; the suffix picks the parser."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read SLO file {path}: {exc}"
            ) from exc
        if path.suffix.lower() in (".yaml", ".yml"):
            data = _parse_yaml(text, path)
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"SLO file {path} is not valid JSON: {exc}"
                ) from exc
        return cls.from_dict(data, source=str(path))

    def evaluate(self, report: LoadTestReport) -> list[SLOViolation]:
        """Check every rule against the report's endpoint summaries."""
        violations: list[SLOViolation] = []
        for rule in self.rules:
            matched = [
                summary
                for endpoint, summary in report.endpoints.items()
                if fnmatchcase(endpoint, rule.endpoint)
            ]
            if not matched:
                violations.append(
                    SLOViolation(
                        endpoint="",
                        pattern=rule.endpoint,
                        key="unmatched",
                        limit=float("nan"),
                        observed=float("nan"),
                    )
                )
                continue
            for summary in matched:
                for key, limit in rule.limits:
                    metric, direction = _RULE_KEYS[key]
                    observed = float(getattr(summary, metric))
                    failed = (
                        observed > limit
                        if direction == "max"
                        else observed < limit
                    )
                    # NaN (no data) never satisfies a threshold.
                    if math.isnan(observed) or failed:
                        violations.append(
                            SLOViolation(
                                endpoint=summary.endpoint,
                                pattern=rule.endpoint,
                                key=key,
                                limit=limit,
                                observed=observed,
                            )
                        )
        return violations


def _parse_yaml(text: str, path: Path) -> dict:
    try:
        import yaml
    except ImportError:
        raise ConfigurationError(
            f"SLO file {path} is YAML but PyYAML is not installed; "
            "use the JSON form instead"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ConfigurationError(
            f"SLO file {path} is not valid YAML: {exc}"
        ) from exc
