"""Arrival processes for the load generator.

Two generator disciplines drive the harness (Schroeder et al.'s
closed/open distinction):

* **closed loop** — a fixed number of clients issue requests
  back-to-back; the offered load adapts to the server's speed, so
  throughput measures capacity but latency hides queueing (a slow
  server simply receives fewer requests).
* **open loop** — requests are released on a precomputed schedule
  regardless of completions, the way independent users arrive.  A slow
  server falls behind the schedule and the backlog shows up as
  latency, which is why SLO checks run open-loop.

Open-loop schedules come in two arrival flavours: ``fixed`` (uniform
interarrival ``1/rate``) and ``poisson`` (exponential interarrivals,
the memoryless arrivals of independent users).  Both are pure
functions of ``(rate, n, seed)`` — the same seed always produces the
same schedule, which the determinism tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ARRIVAL_KINDS", "interarrival_times", "start_offsets"]

#: Supported arrival disciplines.  ``closed`` has no schedule (workers
#: send back-to-back); ``fixed`` and ``poisson`` are open-loop.
ARRIVAL_KINDS = ("closed", "fixed", "poisson")


def _check_open_loop(kind: str, rate: float, n: int) -> None:
    if kind not in ARRIVAL_KINDS:
        raise ConfigurationError(
            f"unknown arrival kind {kind!r} "
            f"(expected one of {', '.join(ARRIVAL_KINDS)})"
        )
    if kind == "closed":
        raise ConfigurationError(
            "closed-loop arrivals have no schedule; interarrival times "
            "are defined only for 'fixed' and 'poisson'"
        )
    if rate <= 0:
        raise ConfigurationError(
            f"open-loop arrivals need rate > 0 req/s, got {rate}"
        )
    if n < 1:
        raise ConfigurationError(f"schedule length must be >= 1, got {n}")


def interarrival_times(
    kind: str, rate: float, n: int, seed: int
) -> np.ndarray:
    """``n`` interarrival gaps in seconds for an open-loop process.

    ``fixed`` yields a constant ``1/rate``; ``poisson`` draws
    exponential gaps with mean ``1/rate`` from a generator seeded with
    ``seed`` — deterministic, so a schedule can be rebuilt exactly.
    """
    _check_open_loop(kind, rate, n)
    if kind == "fixed":
        return np.full(n, 1.0 / rate)
    rng = np.random.default_rng(seed)
    return rng.exponential(scale=1.0 / rate, size=n)


def start_offsets(kind: str, rate: float, n: int, seed: int) -> np.ndarray:
    """Scheduled start offsets (seconds from the run start).

    The first request fires at offset 0 — an open-loop run measures
    from the first arrival, not from an arbitrary empty gap — and the
    remaining offsets accumulate the interarrival gaps.
    """
    gaps = interarrival_times(kind, rate, n, seed)
    offsets = np.cumsum(gaps)
    return offsets - offsets[0]
