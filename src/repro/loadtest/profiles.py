"""Workload profiles: what traffic a load-test run is made of.

A :class:`WorkloadProfile` is a weighted mix of the serving API's
operations — single scores, batch scores, model listings — and
:func:`build_schedule` lowers a profile into a concrete, fully
deterministic list of :class:`PlannedRequest`: which endpoint, which
payload bytes, and (open loop) when to send it.  Everything is a pure
function of ``(profile, rows, seed, arrival parameters)``, so two runs
with the same seed replay the identical request sequence — the
property that makes before/after comparisons honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.loadtest.arrival import start_offsets

__all__ = [
    "Operation",
    "PlannedRequest",
    "WorkloadProfile",
    "PROFILES",
    "get_profile",
    "build_schedule",
]


#: Operation kind → (method, path); route kinds need a town-pair pool.
_OPERATION_ROUTES = {
    "score": ("POST", "/v1/score"),
    "batch": ("POST", "/v1/score/batch"),
    "models": ("GET", "/models"),
    "route_score": ("POST", "/v1/route/score"),
    "route_safest": ("POST", "/v1/route/safest"),
}

_ROUTE_KINDS = ("route_score", "route_safest")


@dataclass(frozen=True)
class Operation:
    """One kind of request a profile can emit."""

    kind: str  #: one of ``_OPERATION_ROUTES``
    weight: float

    def endpoint(self) -> str:
        """The metrics endpoint label this operation lands on."""
        method, path = _OPERATION_ROUTES[self.kind]
        return f"{method} {path}"


@dataclass(frozen=True)
class WorkloadProfile:
    """A named weighted mix of operations."""

    name: str
    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ConfigurationError(
                f"profile {self.name!r} has no operations"
            )
        kinds = [op.kind for op in self.operations]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError(
                f"profile {self.name!r} repeats an operation kind"
            )
        for op in self.operations:
            if op.kind not in _OPERATION_ROUTES:
                raise ConfigurationError(
                    f"profile {self.name!r}: unknown operation kind "
                    f"{op.kind!r}"
                )
            if op.weight <= 0:
                raise ConfigurationError(
                    f"profile {self.name!r}: operation {op.kind!r} needs "
                    f"weight > 0, got {op.weight}"
                )

    def weights(self) -> np.ndarray:
        """Operation weights normalised to sum to 1."""
        raw = np.array([op.weight for op in self.operations], dtype=float)
        return raw / raw.sum()

    def needs_pairs(self) -> bool:
        """True when the profile emits route queries (needs a town-pair
        pool alongside the row pool)."""
        return any(op.kind in _ROUTE_KINDS for op in self.operations)

    def describe(self) -> str:
        weights = self.weights()
        mix = ", ".join(
            f"{op.kind} {100 * w:.0f}%"
            for op, w in zip(self.operations, weights)
        )
        return f"{self.name} ({mix})"


#: The built-in profiles.  ``mixed`` is the serving-stack default: a
#: navigation-backend-shaped mix dominated by interactive single
#: scores, a tail of batch re-scores, and occasional model listings.
PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            "mixed",
            (
                Operation("score", 0.80),
                Operation("batch", 0.15),
                Operation("models", 0.05),
            ),
        ),
        WorkloadProfile("score", (Operation("score", 1.0),)),
        WorkloadProfile("batch", (Operation("batch", 1.0),)),
        WorkloadProfile(
            "browse",
            (Operation("models", 0.5), Operation("score", 0.5)),
        ),
        # Navigation traffic: mostly route-risk lookups, a safest-route
        # tail, plus enough single scores to keep the scoring path hot.
        WorkloadProfile(
            "routes",
            (
                Operation("route_score", 0.55),
                Operation("route_safest", 0.35),
                Operation("score", 0.10),
            ),
        ),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    profile = PROFILES.get(name)
    if profile is None:
        raise ConfigurationError(
            f"unknown workload profile {name!r} "
            f"(available: {', '.join(sorted(PROFILES))})"
        )
    return profile


@dataclass(frozen=True)
class PlannedRequest:
    """One concrete request of a schedule, payload pre-encoded."""

    index: int
    kind: str
    method: str
    path: str
    endpoint: str
    body: bytes | None
    n_rows: int
    #: Scheduled start offset in seconds (None = closed loop: send as
    #: soon as a worker is free).
    offset: float | None = None
    #: Attributes that never ship over the wire (payload row indices),
    #: kept for schedule introspection and tests.
    row_indices: tuple[int, ...] = field(default=(), repr=False)


def build_schedule(
    profile: WorkloadProfile,
    rows: list[dict],
    n_requests: int,
    seed: int,
    model: str | None = None,
    batch_size: int = 16,
    arrival: str = "closed",
    rate: float = 0.0,
    pairs: list[tuple[str, str]] | None = None,
) -> list[PlannedRequest]:
    """Lower a profile into ``n_requests`` concrete requests.

    ``rows`` is the payload pool (schema-valid request rows); single
    scores draw one row per request, batch scores a wrapping window of
    ``batch_size`` consecutive rows.  Route operations draw town pairs
    from ``pairs`` (required for profiles where
    :meth:`WorkloadProfile.needs_pairs` is true), reusing the row-draw
    stream so adding route traffic never perturbs which rows existing
    profiles pick.  All randomness flows from one
    ``np.random.Generator`` seeded with ``seed``: operation choice,
    row choice and (``poisson``) interarrival gaps, so the schedule is
    bit-reproducible.
    """
    if not rows:
        raise ConfigurationError("the payload row pool is empty")
    if n_requests < 1:
        raise ConfigurationError(
            f"n_requests must be >= 1, got {n_requests}"
        )
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    if profile.needs_pairs() and not pairs:
        raise ConfigurationError(
            f"profile {profile.name!r} emits route queries and needs a "
            "non-empty town-pair pool (pairs=...)"
        )
    rng = np.random.default_rng(seed)
    choices = rng.choice(
        len(profile.operations), size=n_requests, p=profile.weights()
    )
    row_starts = rng.integers(0, len(rows), size=n_requests)
    if arrival == "closed":
        offsets = [None] * n_requests
    else:
        # Interarrival draws get their own stream (seed + 1) so adding
        # requests never perturbs which operations are chosen.
        offsets = [
            float(x)
            for x in start_offsets(arrival, rate, n_requests, seed + 1)
        ]
    schedule: list[PlannedRequest] = []
    for i in range(n_requests):
        op = profile.operations[int(choices[i])]
        start = int(row_starts[i])
        method, path = _OPERATION_ROUTES[op.kind]
        if op.kind == "models":
            body = None
            indices: tuple[int, ...] = ()
        else:
            if op.kind == "score":
                indices = (start,)
                payload: dict = {"row": rows[start]}
            elif op.kind == "batch":
                indices = tuple(
                    (start + j) % len(rows) for j in range(batch_size)
                )
                payload = {"rows": [rows[j] for j in indices]}
            else:
                # Route queries: reuse the row draw as the pair index.
                origin, dest = pairs[start % len(pairs)]
                indices = ()
                payload = {"from": origin, "to": dest}
                if op.kind == "route_safest":
                    payload["k"] = 3
            if model is not None:
                payload["model"] = model
            body = json.dumps(payload).encode("utf-8")
        schedule.append(
            PlannedRequest(
                index=i,
                kind=op.kind,
                method=method,
                path=path,
                endpoint=op.endpoint(),
                body=body,
                n_rows=len(indices),
                offset=offsets[i],
                row_indices=indices,
            )
        )
    return schedule
