"""The load-test results model.

Workers accumulate raw :class:`RequestOutcome` records; the runner
folds them into a :class:`LoadTestReport` — per-endpoint throughput,
error rate and exact latency percentiles over the measured window,
plus the parity cross-check against the server's own counters, the
Prometheus scrape tally, and the K slowest requests with their trace
ids.  ``render()`` is the human artefact (``benchmarks/results/
loadtest.txt``); ``to_dict()`` the machine one (``--json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "RequestOutcome",
    "EndpointSummary",
    "ParityCheck",
    "LoadTestReport",
    "percentile",
]


def percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (NaN when empty).

    The same definition :class:`repro.serving.metrics.RequestMetrics`
    uses, so client-side and server-side percentiles are comparable.
    """
    if not ordered:
        return float("nan")
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


@dataclass(frozen=True)
class RequestOutcome:
    """What one sent request came back as."""

    endpoint: str
    latency: float  #: seconds, request write to response read
    status: int  #: HTTP status; 0 = transport failure (no response)
    trace_id: str | None = None
    #: Seconds the send lagged behind its open-loop schedule slot
    #: (0.0 for closed-loop requests).
    lateness: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400

    @property
    def transport_error(self) -> bool:
        return self.status == 0


@dataclass
class EndpointSummary:
    """Aggregated client-side view of one endpoint."""

    endpoint: str
    requests: int
    errors: int
    transport_errors: int
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def error_rate(self) -> float:
        total = self.requests + self.transport_errors
        if total == 0:
            return float("nan")
        return (self.errors + self.transport_errors) / total

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "requests": self.requests,
            "errors": self.errors,
            "transport_errors": self.transport_errors,
            "error_rate": self.error_rate,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": self.mean_ms,
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "max": self.max_ms,
            },
        }


@dataclass
class ParityCheck:
    """Client-observed vs server-counted requests for one endpoint.

    ``server`` is the delta of the server's own ``/metrics`` request
    counter across the measured window.  Any difference means requests
    were lost between the client and the server's accounting — the
    harness treats that as a hard failure, never a footnote.
    """

    endpoint: str
    client: int
    server: int

    @property
    def ok(self) -> bool:
        return self.client == self.server

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "client": self.client,
            "server": self.server,
            "ok": self.ok,
        }


def summarise(
    outcomes: list[RequestOutcome], wall_seconds: float
) -> dict[str, EndpointSummary]:
    """Fold raw outcomes into per-endpoint summaries."""
    by_endpoint: dict[str, list[RequestOutcome]] = {}
    for outcome in outcomes:
        by_endpoint.setdefault(outcome.endpoint, []).append(outcome)
    summaries: dict[str, EndpointSummary] = {}
    for endpoint in sorted(by_endpoint):
        records = by_endpoint[endpoint]
        completed = [r for r in records if not r.transport_error]
        latencies = sorted(r.latency for r in completed)
        n = len(latencies)
        summaries[endpoint] = EndpointSummary(
            endpoint=endpoint,
            requests=n,
            errors=sum(1 for r in completed if not r.ok),
            transport_errors=len(records) - n,
            throughput_rps=(
                n / wall_seconds if wall_seconds > 0 else float("nan")
            ),
            mean_ms=(
                1000.0 * sum(latencies) / n if n else float("nan")
            ),
            p50_ms=1000.0 * percentile(latencies, 50),
            p95_ms=1000.0 * percentile(latencies, 95),
            p99_ms=1000.0 * percentile(latencies, 99),
            max_ms=1000.0 * latencies[-1] if n else float("nan"),
        )
    return summaries


@dataclass
class LoadTestReport:
    """Everything one measured load-test window produced."""

    profile: str
    arrival: str
    seed: int
    clients: int
    wall_seconds: float
    endpoints: dict[str, EndpointSummary]
    parity: list[ParityCheck]
    n_scrapes: int
    scrape_samples: int
    slowest: list[RequestOutcome]
    warmup_requests: int = 0
    rate: float = 0.0
    lateness_p95_ms: float = 0.0
    waterfall: str | None = None
    #: The server's SLO burn-rate snapshot at the end of the run
    #: (``/metrics`` JSON ``slo`` block), when the target runs an
    #: :class:`~repro.obs.burnrate.SLOBurnEngine`.
    burnrate: dict | None = None
    notes: list[str] = field(default_factory=list)

    # -- derived -----------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.endpoints.values())

    @property
    def total_errors(self) -> int:
        return sum(
            s.errors + s.transport_errors for s in self.endpoints.values()
        )

    @property
    def total_throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return float("nan")
        return self.total_requests / self.wall_seconds

    @property
    def parity_ok(self) -> bool:
        return all(check.ok for check in self.parity)

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "arrival": self.arrival,
            "seed": self.seed,
            "clients": self.clients,
            "rate": self.rate,
            "wall_seconds": self.wall_seconds,
            "warmup_requests": self.warmup_requests,
            "total_requests": self.total_requests,
            "total_errors": self.total_errors,
            "total_throughput_rps": self.total_throughput_rps,
            "lateness_p95_ms": self.lateness_p95_ms,
            "endpoints": {
                name: summary.to_dict()
                for name, summary in self.endpoints.items()
            },
            "parity": [check.to_dict() for check in self.parity],
            "parity_ok": self.parity_ok,
            "scrapes": {
                "count": self.n_scrapes,
                "samples": self.scrape_samples,
            },
            "slowest": [
                {
                    "endpoint": r.endpoint,
                    "latency_ms": 1000.0 * r.latency,
                    "trace_id": r.trace_id,
                }
                for r in self.slowest
            ],
            "burnrate": self.burnrate,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """The fixed-width text artefact."""
        from repro.core.reporting import render_table

        mode = (
            f"{self.arrival} @ {self.rate:g} req/s"
            if self.arrival != "closed"
            else "closed loop"
        )
        rows = [
            [
                s.endpoint,
                s.requests,
                s.errors + s.transport_errors,
                f"{s.throughput_rps:.1f}",
                f"{s.p50_ms:.2f}",
                f"{s.p95_ms:.2f}",
                f"{s.p99_ms:.2f}",
                f"{s.max_ms:.2f}",
            ]
            for s in self.endpoints.values()
        ]
        text = render_table(
            ["endpoint", "requests", "errors", "req/s", "p50 ms",
             "p95 ms", "p99 ms", "max ms"],
            rows,
            title=(
                f"Load test: profile {self.profile}, {mode}, "
                f"{self.clients} clients, seed {self.seed}, "
                f"{self.wall_seconds:.2f}s measured"
            ),
        )
        lines = [
            text,
            f"total: {self.total_requests} requests "
            f"({self.total_throughput_rps:.1f} req/s), "
            f"{self.total_errors} errors, "
            f"{self.warmup_requests} warmup requests excluded",
        ]
        if self.arrival != "closed":
            lines.append(
                f"schedule lateness p95: {self.lateness_p95_ms:.2f} ms"
            )
        for check in self.parity:
            verdict = "OK" if check.ok else "MISMATCH (lost requests!)"
            lines.append(
                f"parity {check.endpoint}: client={check.client} "
                f"server={check.server} {verdict}"
            )
        lines.append(
            f"prometheus scrapes: {self.n_scrapes} validated "
            f"({self.scrape_samples} samples in the final exposition)"
        )
        if self.slowest:
            lines.append("slowest requests:")
            for r in self.slowest:
                trace = r.trace_id or "-"
                lines.append(
                    f"  {1000.0 * r.latency:9.2f} ms  {r.endpoint}  "
                    f"trace={trace}"
                )
        if self.burnrate and self.burnrate.get("rules"):
            lines.append("slo burn rates (server-side):")
            for rule in self.burnrate["rules"]:
                lines.append(
                    f"  {rule['slo']}/{rule['rule']} {rule['endpoint']}: "
                    f"fast={rule['fast_burn_rate']:.2f} "
                    f"slow={rule['slow_burn_rate']:.2f} "
                    f"budget_remaining={rule['budget_remaining']:.1%}"
                )
        if self.waterfall:
            lines.append("")
            lines.append(self.waterfall)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
