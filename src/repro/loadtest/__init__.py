"""Load-generation and SLO harness for the serving stack.

The package turns "is the server fast enough?" into a regression gate:

* :mod:`repro.loadtest.arrival` — closed/open-loop arrival processes
  (fixed-rate and Poisson schedules, deterministic in the seed);
* :mod:`repro.loadtest.profiles` — weighted workload mixes lowered
  into concrete, pre-encoded request schedules;
* :mod:`repro.loadtest.runner` — the driver: warmup, measured window,
  mid-run Prometheus scrape validation, client/server count parity,
  slowest-request trace waterfalls;
* :mod:`repro.loadtest.results` — the report model (per-endpoint
  throughput, error rate, p50/p95/p99);
* :mod:`repro.loadtest.slo` — declarative thresholds evaluated against
  a report; violations drive the CLI's exit code.
"""

from repro.loadtest.arrival import (
    ARRIVAL_KINDS,
    interarrival_times,
    start_offsets,
)
from repro.loadtest.profiles import (
    PROFILES,
    Operation,
    PlannedRequest,
    WorkloadProfile,
    build_schedule,
    get_profile,
)
from repro.loadtest.results import (
    EndpointSummary,
    LoadTestReport,
    ParityCheck,
    RequestOutcome,
    summarise,
)
from repro.loadtest.runner import TRACE_HEADER, LoadTest
from repro.loadtest.slo import SLORule, SLOSpec, SLOViolation

__all__ = [
    "ARRIVAL_KINDS",
    "interarrival_times",
    "start_offsets",
    "PROFILES",
    "Operation",
    "PlannedRequest",
    "WorkloadProfile",
    "build_schedule",
    "get_profile",
    "EndpointSummary",
    "LoadTestReport",
    "ParityCheck",
    "RequestOutcome",
    "summarise",
    "LoadTest",
    "TRACE_HEADER",
    "SLORule",
    "SLOSpec",
    "SLOViolation",
]
