"""The load-test runner: drive a live scoring service, measure, verify.

:class:`LoadTest` sends a deterministic schedule (see
:mod:`repro.loadtest.profiles`) at a running
:class:`~repro.serving.http.ScoringService` — in-process (the CLI's
default, full trace access) or any URL — through ``clients`` keep-alive
connections, with a closed-loop warmup ahead of the measured window.

Beyond generating load, the runner *verifies the serving stack while
loading it*:

* every mid-run and final ``GET /metrics?format=prometheus`` scrape is
  checked with :func:`repro.obs.prometheus.validate_exposition` — a
  server that emits a malformed exposition under load fails the run;
* client-observed request counts are cross-checked against the delta
  of the server's own per-endpoint counters (``GET /metrics`` JSON)
  over the window — any mismatch means lost requests and is loud;
* the K slowest requests keep their ``X-Repro-Trace-Id``, and when the
  harness owns the service's tracer their span trees are rendered as
  waterfalls straight into the report.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any

from repro.exceptions import ConfigurationError, ServingError
from repro.loadtest.profiles import (
    WorkloadProfile,
    build_schedule,
    get_profile,
)
from repro.loadtest.results import (
    LoadTestReport,
    ParityCheck,
    RequestOutcome,
    percentile,
    summarise,
)
from repro.obs.prometheus import validate_exposition
from repro.obs.waterfall import render_waterfall

__all__ = ["LoadTest", "TRACE_HEADER"]

#: Response header carrying the request's trace id (set by the serving
#: layer whenever its tracer is enabled).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Closed-loop schedules are cycled, so their length only needs to be
#: large enough to mix operations well.
_CLOSED_SCHEDULE_LEN = 512


class _Counter:
    """A lock-guarded monotonically increasing ticket dispenser."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            ticket = self._value
            self._value += 1
            return ticket


class LoadTest:
    """One configured load-test run (call :meth:`run` once).

    Parameters
    ----------
    url:
        Base URL of the server under test (``http://host:port``).
    rows:
        Schema-valid payload rows the schedule draws from.
    service:
        The in-process :class:`~repro.serving.http.ScoringService`
        when the harness owns the server — unlocks waterfall rendering
        through its tracer.  ``None`` for a remote target.
    profile:
        A profile name from :data:`~repro.loadtest.profiles.PROFILES`
        or a :class:`WorkloadProfile`.
    clients:
        Concurrent keep-alive connections.
    duration:
        Measured-window length in seconds.  Closed loop: workers stop
        at the deadline.  Open loop: the schedule holds
        ``rate * duration`` requests.
    rate:
        Open-loop offered load in req/s; ``0`` selects closed loop.
    arrival:
        ``"fixed"`` or ``"poisson"`` when ``rate > 0``.
    warmup:
        Closed-loop warmup seconds before the measured window (results
        discarded, counters snapshotted after it).
    seed:
        Workload-schedule seed: same seed, same requests.
    model:
        Model name to pin in payloads (``None``: server default).
    batch_size:
        Rows per ``/v1/score/batch`` request.
    scrape_interval:
        Seconds between mid-run Prometheus scrapes.
    slowest_k:
        How many slowest requests to keep (and render waterfalls for).
    timeout:
        Per-request client timeout in seconds.
    pairs:
        Town-pair pool for route-query profiles (see
        :meth:`WorkloadProfile.needs_pairs`); e.g. from
        ``GET /v1/route/towns`` of the target service.
    """

    def __init__(
        self,
        url: str,
        rows: list[dict],
        service: Any = None,
        profile: str | WorkloadProfile = "mixed",
        clients: int = 4,
        duration: float = 5.0,
        rate: float = 0.0,
        arrival: str = "poisson",
        warmup: float = 1.0,
        seed: int = 7,
        model: str | None = None,
        batch_size: int = 16,
        scrape_interval: float = 1.0,
        slowest_k: int = 5,
        timeout: float = 30.0,
        pairs: list[tuple[str, str]] | None = None,
    ):
        if clients < 1:
            raise ConfigurationError(
                f"clients must be >= 1, got {clients}"
            )
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be > 0 seconds, got {duration}"
            )
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        self.url = url.rstrip("/")
        host, _, port_text = self.url.split("//", 1)[1].partition(":")
        self.host = host
        self.port = int(port_text) if port_text else 80
        self.rows = rows
        self.service = service
        self.profile = (
            get_profile(profile) if isinstance(profile, str) else profile
        )
        self.clients = clients
        self.duration = duration
        self.rate = rate
        self.arrival = "closed" if rate <= 0 else arrival
        self.warmup = warmup
        self.seed = seed
        self.model = model
        self.batch_size = batch_size
        self.scrape_interval = scrape_interval
        self.slowest_k = slowest_k
        self.timeout = timeout
        self.pairs = pairs
        if self.profile.needs_pairs() and not pairs:
            raise ConfigurationError(
                f"profile {self.profile.name!r} emits route queries; "
                "pass pairs=[(origin, dest), ...] (e.g. from "
                "GET /v1/route/towns)"
            )

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _send(
        self,
        connection: http.client.HTTPConnection,
        planned,
        lateness: float = 0.0,
    ) -> tuple[RequestOutcome, http.client.HTTPConnection]:
        """Send one planned request; returns (outcome, live connection).

        A transport failure (connection refused/reset, timeout) is an
        outcome with ``status=0`` — never an exception: a load test
        must keep offering load and account for the loss instead of
        dying on the first broken keep-alive socket.
        """
        headers = {}
        if planned.body is not None:
            headers["Content-Type"] = "application/json"
        start = time.perf_counter()
        try:
            connection.request(
                planned.method,
                planned.path,
                body=planned.body,
                headers=headers,
            )
            response = connection.getresponse()
            response.read()
            elapsed = time.perf_counter() - start
            outcome = RequestOutcome(
                endpoint=planned.endpoint,
                latency=elapsed,
                status=response.status,
                trace_id=response.getheader(TRACE_HEADER),
                lateness=lateness,
            )
        except (OSError, http.client.HTTPException):
            elapsed = time.perf_counter() - start
            connection.close()
            connection = self._connect()
            outcome = RequestOutcome(
                endpoint=planned.endpoint,
                latency=elapsed,
                status=0,
                lateness=lateness,
            )
        return outcome, connection

    def _get_json(self, path: str) -> dict:
        connection = self._connect()
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read()
            if response.status != 200:
                raise ServingError(
                    f"GET {path} on {self.url} returned HTTP "
                    f"{response.status}"
                )
            return json.loads(body)
        finally:
            connection.close()

    def _scrape_prometheus(self) -> int:
        """One validated exposition scrape; returns its sample count."""
        connection = self._connect()
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            if response.status != 200:
                raise ServingError(
                    f"prometheus scrape on {self.url} returned HTTP "
                    f"{response.status}"
                )
            return validate_exposition(text)
        finally:
            connection.close()

    def _server_counts(self) -> dict[str, int]:
        """The server's own per-endpoint request counters."""
        summary = self._get_json("/metrics")["endpoints"]
        return {
            endpoint: record["count"]
            for endpoint, record in summary.items()
        }

    # -- phases ------------------------------------------------------------
    def _run_closed(
        self, schedule, deadline: float
    ) -> list[RequestOutcome]:
        """Workers send back-to-back until the deadline."""
        tickets = _Counter()
        results: list[list[RequestOutcome]] = [
            [] for _ in range(self.clients)
        ]

        def worker(worker_id: int) -> None:
            connection = self._connect()
            mine = results[worker_id]
            try:
                while time.monotonic() < deadline:
                    planned = schedule[tickets.next() % len(schedule)]
                    outcome, connection = self._send(connection, planned)
                    mine.append(outcome)
            finally:
                connection.close()

        self._join(worker)
        return [outcome for chunk in results for outcome in chunk]

    def _run_open(self, schedule) -> list[RequestOutcome]:
        """Workers honour each request's scheduled start offset."""
        tickets = _Counter()
        results: list[list[RequestOutcome]] = [
            [] for _ in range(self.clients)
        ]
        t0 = time.monotonic()

        def worker(worker_id: int) -> None:
            connection = self._connect()
            mine = results[worker_id]
            try:
                while True:
                    ticket = tickets.next()
                    if ticket >= len(schedule):
                        return
                    planned = schedule[ticket]
                    wait = t0 + planned.offset - time.monotonic()
                    if wait > 0:
                        time.sleep(wait)
                    lateness = max(
                        0.0,
                        time.monotonic() - (t0 + planned.offset),
                    )
                    outcome, connection = self._send(
                        connection, planned, lateness=lateness
                    )
                    mine.append(outcome)
            finally:
                connection.close()

        self._join(worker)
        return [outcome for chunk in results for outcome in chunk]

    def _join(self, worker) -> None:
        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"loadtest-{i}"
            )
            for i in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # -- the run -----------------------------------------------------------
    def run(self) -> LoadTestReport:
        notes: list[str] = []
        # Warmup: closed loop, its own seed stream, results discarded.
        warmup_outcomes: list[RequestOutcome] = []
        if self.warmup > 0:
            warmup_schedule = build_schedule(
                self.profile,
                self.rows,
                _CLOSED_SCHEDULE_LEN,
                seed=self.seed + 101,
                model=self.model,
                batch_size=self.batch_size,
                arrival="closed",
                pairs=self.pairs,
            )
            warmup_outcomes = self._run_closed(
                warmup_schedule, time.monotonic() + self.warmup
            )

        # The measured schedule (deterministic in the seed).
        if self.arrival == "closed":
            schedule = build_schedule(
                self.profile,
                self.rows,
                _CLOSED_SCHEDULE_LEN,
                seed=self.seed,
                model=self.model,
                batch_size=self.batch_size,
                arrival="closed",
                pairs=self.pairs,
            )
        else:
            n_requests = max(1, int(round(self.rate * self.duration)))
            schedule = build_schedule(
                self.profile,
                self.rows,
                n_requests,
                seed=self.seed,
                model=self.model,
                batch_size=self.batch_size,
                arrival=self.arrival,
                rate=self.rate,
                pairs=self.pairs,
            )

        # Counter snapshot after warmup = the parity baseline.
        before = self._server_counts()
        scrape_tally = {"count": 0, "samples": 0}
        stop_scraping = threading.Event()

        def scraper() -> None:
            while not stop_scraping.wait(self.scrape_interval):
                scrape_tally["samples"] = self._scrape_prometheus()
                scrape_tally["count"] += 1

        scrape_thread = threading.Thread(
            target=scraper, name="loadtest-scraper"
        )
        scrape_thread.start()
        started = time.perf_counter()
        try:
            if self.arrival == "closed":
                outcomes = self._run_closed(
                    schedule, time.monotonic() + self.duration
                )
            else:
                outcomes = self._run_open(schedule)
        finally:
            stop_scraping.set()
            scrape_thread.join()
        wall = time.perf_counter() - started

        # Final scrape is always validated, even for tiny runs where
        # the interval never fired mid-run.
        scrape_tally["samples"] = self._scrape_prometheus()
        scrape_tally["count"] += 1
        final_metrics = self._get_json("/metrics")
        after = {
            endpoint: record["count"]
            for endpoint, record in final_metrics["endpoints"].items()
        }
        # Servers running an SLO burn engine publish their burn state
        # in the metrics JSON; fold it into the report so a load test
        # records how hard it pushed each error budget.
        burnrate = final_metrics.get("slo")

        parity = [
            ParityCheck(
                endpoint=endpoint,
                client=sum(
                    1
                    for o in outcomes
                    if o.endpoint == endpoint and not o.transport_error
                ),
                server=after.get(endpoint, 0) - before.get(endpoint, 0),
            )
            for endpoint in sorted(
                {op.endpoint() for op in self.profile.operations}
            )
        ]
        transport_errors = sum(1 for o in outcomes if o.transport_error)
        if transport_errors:
            notes.append(
                f"{transport_errors} request(s) failed at the transport "
                "layer (no response) — parity cannot hold"
            )

        completed = [o for o in outcomes if not o.transport_error]
        slowest = sorted(
            completed, key=lambda o: o.latency, reverse=True
        )[: self.slowest_k]
        lateness = sorted(o.lateness for o in outcomes)
        report = LoadTestReport(
            profile=self.profile.name,
            arrival=self.arrival,
            seed=self.seed,
            clients=self.clients,
            rate=self.rate,
            wall_seconds=wall,
            endpoints=summarise(outcomes, wall),
            parity=parity,
            n_scrapes=scrape_tally["count"],
            scrape_samples=scrape_tally["samples"],
            slowest=slowest,
            warmup_requests=len(warmup_outcomes),
            lateness_p95_ms=(
                1000.0 * percentile(lateness, 95) if lateness else 0.0
            ),
            waterfall=self._waterfall(slowest),
            burnrate=burnrate,
            notes=notes,
        )
        return report

    def _waterfall(self, slowest) -> str | None:
        """Waterfalls of the slowest requests' traces (service mode)."""
        if self.service is None:
            return None
        tracer = getattr(self.service, "tracer", None)
        if tracer is None or not tracer.enabled:
            return None
        wanted = {o.trace_id for o in slowest if o.trace_id}
        if not wanted:
            return None
        spans = [
            s for s in tracer.finished() if s.trace_id in wanted
        ]
        if not spans:
            return None
        return (
            f"waterfalls of the {len(wanted)} slowest request(s):\n"
            + render_waterfall(spans)
        )
