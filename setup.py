"""Legacy-installer shim: the environment's setuptools lacks the
``wheel`` package needed for PEP 517 editable installs, so
``pip install -e . --no-use-pep517`` goes through this file instead.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
